//! The HeteroGPU training framework (Fig. 3): central dynamic scheduler +
//! per-GPU manager threads over simulated heterogeneous devices.
//!
//! # Determinism model
//!
//! The scheduler owns the simulated [`Device`]s and the shuffled
//! [`SampleStream`]; every scheduling decision (which GPU receives the next
//! batch, when merges happen, what Algorithm 1/2 compute) is a function of
//! *virtual clocks* and seeded RNG state only. GPU-manager threads do the
//! real numeric work concurrently, but since the scheduler never waits on
//! them to decide placement, a run's result is bit-identical for a fixed
//! `(seed, thread-count)` regardless of OS scheduling.
//!
//! # Policy space
//!
//! One engine covers all four GPU algorithms of the paper's evaluation via
//! [`TrainerSpec`]: dynamic vs static dispatch, adaptive vs fixed batch
//! sizes, merge-per-mega-batch vs merge-every-round, and the merge rule
//! (Algorithm 2, plain averaging, or CROSSBOW-style partial pull).

pub mod arena;
pub mod chaos;
mod manager;
mod messages;

use crate::checkpoint::TrainingState;
use crate::hyper::{GpuHyper, ScalingParams};
use crate::merging::{apply_global_update_flat, compute_merge_weights, MergeDecision, MergeParams};
use crate::metrics::{MergeRecord, RunRecorder, RunResult, SparseMergeStats};
use crate::schedule::{ScalingScheduler, StalenessBound};
use arena::{DeltaArena, MergeArena};
use asgd_collective::{
    scatter_delta, sparse_merge_timing, Algorithm, AllReduceTiming, CollectiveContext, InterNode,
    SparseLayout, SparseMergePlan,
};
use asgd_data::{batching::MegaBatchBudget, SampleStream, XmlDataset};
use asgd_gpusim::device::build_server;
use asgd_gpusim::fusion::{FusionPolicy, LaunchModel};
use asgd_gpusim::memory::MemoryTracker;
use asgd_gpusim::{
    ClusterTopology, Device, DeviceId, DeviceProfile, FaultPlan, SimTime, Topology, TraceLog,
};
use asgd_model::workload::{
    epoch_kernels, lsh_rebuild_kernels, model_transfer_kernels_sized, overhead_delta_for,
    sampled_epoch_kernels,
};
use asgd_model::{eval, Mlp, MlpConfig};
use asgd_tensor::parallel::{par_copy, par_widen};
use asgd_tensor::{FlatVec, Precision};
use chaos::ChaosStats;
use messages::{FromManager, ToManager};
use std::sync::mpsc::{channel, Receiver, Sender};

/// Redistribution copies shorter than this stay serial (same rationale as
/// the collective's reduction threshold).
const MIN_PAR_MERGE: usize = 1 << 14;

/// Copies a merged buffer into the f32 global model (bf16 widens exactly,
/// so this direction never rounds).
pub(crate) fn copy_to_global(buf: &FlatVec, global: &mut [f32]) {
    match buf {
        FlatVec::F32(v) => par_copy(v, global, MIN_PAR_MERGE),
        FlatVec::Bf16(v) => par_widen(v, global, MIN_PAR_MERGE),
    }
}

/// Replaces the dense merge timing with the sparse-schedule timing when the
/// sparse delta merge is active. The reduction arithmetic already ran over
/// full reconstructed buffers (the reduction contract), so sparsity only
/// changes what the simulated wire carries; the dense timing doubles as the
/// density-threshold fallback. Free function over disjoint scheduler fields
/// so callers can split borrows (same pattern as
/// [`chaos::reduce_with_oom_fallback`]).
#[allow(clippy::too_many_arguments)]
fn sparse_timing_or_dense(
    delta_arena: &DeltaArena,
    layout: &SparseLayout,
    stats: &mut SparseMergeStats,
    plan: &SparseMergePlan,
    gpus: &[usize],
    ctx: &CollectiveContext,
    arrivals: &[SimTime],
    dense: AllReduceTiming,
) -> AllReduceTiming {
    let row_sets: Vec<&[u32]> = gpus.iter().map(|&g| delta_arena.slot(g).0).collect();
    let s = sparse_merge_timing(layout, &row_sets, plan, ctx, arrivals, dense);
    stats.merges += 1;
    if s.fell_back {
        stats.fallbacks += 1;
    }
    stats.sparse_bytes += s.timing.bytes_moved as u64;
    stats.dense_bytes += dense.bytes_moved as u64;
    s.timing
}

/// Sample seed of a batch: an FNV-1a fold of its sample ids mixed with the
/// LSH seed. A pure function of the ids, so a batch re-dispatched after a
/// device loss (same ids, different GPU) reproduces its candidate set
/// exactly; dispatch order and dispatch target never enter the seed.
fn batch_sample_seed(ids: &[usize], lsh_seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &id in ids {
        h ^= id as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ lsh_seed
}

/// How batches are assigned to GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// The paper's dynamic scheduling: the next batch goes to the GPU whose
    /// virtual clock is lowest (i.e. the first to become available).
    Dynamic,
    /// Static round-robin partitioning (Elastic SGD, TensorFlow, CROSSBOW).
    Static,
}

/// Whether Algorithm 1 runs at mega-batch boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingPolicy {
    /// Adaptive batch size scaling (Algorithm 1, linear rule).
    Adaptive,
    /// Adaptive scaling with the multiplicative update — the alternative
    /// the paper tried and rejected (ablation).
    AdaptiveMultiplicative,
    /// Fixed equal batch sizes.
    Fixed,
}

/// How often replicas are merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeInterval {
    /// Once per mega-batch (Adaptive and Elastic SGD).
    MegaBatch,
    /// After every round of one batch per GPU (TensorFlow's gradient
    /// aggregation and CROSSBOW's synchronous model averaging).
    EveryRound,
}

/// The rule combining replicas into the global model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MergeRule {
    /// Algorithm 2: normalized weights + perturbation + momentum.
    Normalized(MergeParams),
    /// Uniform averaging followed by the same momentum global-model update
    /// Adaptive SGD uses (`gamma = 0` disables it). With `gamma = 0.9` this
    /// is Elastic SGD's update rule — the paper notes Elastic and Adaptive
    /// "use the same model update rule" and coincide on a single GPU. For
    /// merge-every-round with equal batch sizes and `gamma = 0`, uniform
    /// averaging is mathematically identical to synchronous gradient
    /// aggregation (averaging `w − lr·∇_i` equals applying the averaged
    /// gradient).
    Average {
        /// Momentum of the global-model update.
        gamma: f64,
    },
    /// CROSSBOW-style synchronous model averaging: the central average model
    /// becomes the global model, and every replica is *partially pulled*
    /// toward it (`w ← w + pull·(z − w)`), keeping learner diversity. The
    /// sensitivity of this update is the source of the divergence the paper
    /// observes (§V-B).
    Crossbow {
        /// Pull strength in `(0, 1]`.
        pull: f64,
    },
}

/// The complete policy bundle describing one training algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerSpec {
    /// Display name (used in experiment output).
    pub name: String,
    /// Batch placement policy.
    pub dispatch: DispatchPolicy,
    /// Batch-size adaptation policy.
    pub scaling: ScalingPolicy,
    /// Merge cadence.
    pub merge_interval: MergeInterval,
    /// Merge rule.
    pub merge_rule: MergeRule,
    /// All-reduce implementation for model merging.
    pub allreduce: Algorithm,
    /// Kernel-fusion policy of the GPU managers.
    pub fusion: FusionPolicy,
    /// Multiplier on epoch compute time (1.0 for HeteroGPU implementations;
    /// >1 models TensorFlow's slower epoch execution, §V-B).
    pub compute_overhead: f64,
}

/// Configuration of the LSH-sampled softmax training path (see `DESIGN.md`,
/// "Sampled softmax & sparse output path").
///
/// With [`RunConfig::sampled_softmax`] set, every manager trains through a
/// deterministic candidate set — the batch's true labels plus
/// `neg_samples` hash-bucket negatives — instead of the full `num_classes`
/// output layer, which is what makes full-label-scale XC shapes (670k
/// labels) trainable. `None` trains the exact dense softmax (the reference
/// path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledSoftmax {
    /// SimHash tables in the LSH index (`ASGD_LSH_TABLES`).
    pub tables: usize,
    /// Bits per table signature (buckets per table = `2^k_bits`).
    pub k_bits: usize,
    /// Negatives per batch (`ASGD_NEG_SAMPLES`); the candidate set is
    /// `positives ∪ negatives`, clamped to the class count.
    pub neg_samples: usize,
    /// Seed of the LSH hyperplanes and the per-batch negative draws — the
    /// third seed of the determinism contract, next to the run seed and the
    /// fault seed.
    pub seed: u64,
}

impl SampledSoftmax {
    /// Defaults used by the experiment harness: 8 tables × 9 bits, seeded
    /// independently of the run seed.
    pub fn defaults(neg_samples: usize) -> Self {
        SampledSoftmax {
            tables: 8,
            k_bits: 9,
            neg_samples,
            seed: 0x51DE_CA5E,
        }
    }
}

/// Shape and merge topology of a simulated multi-server fleet
/// (`ASGD_SERVERS` × `ASGD_DEVICES_PER_SERVER`).
///
/// With [`RunConfig::cluster`] set, the trainer's collective context routes
/// cross-server transfers over a slow inter-node link
/// ([`ClusterTopology::ethernet`]) and the merge runs the two-level
/// hierarchical schedule (`asgd_collective::hierarchical`). Result bits are
/// **identical** to the flat merge over the same replicas — the merge
/// topology is a scheduling optimization, never an arithmetic one (see
/// `DESIGN.md`, "Cluster topology & hierarchical merge") — so cluster runs
/// stay bit-deterministic at any `ASGD_THREADS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of servers (nodes); device `g` lives on server
    /// `g / devices_per_server` (fixed server-major ordering).
    pub servers: usize,
    /// Devices per server; `servers · devices_per_server` must equal the
    /// trainer's device count.
    pub devices_per_server: usize,
    /// Inter-node reduction shape over the server leads.
    pub inter: InterNode,
}

/// Run-level configuration shared by all algorithms (the paper uses "the
/// same hyperparameters for all the algorithms", §V-A).
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Maximum (and initial) batch size `b_max`.
    pub b_max: usize,
    /// Learning rate at `b_max`; other sizes follow the linear scaling rule.
    pub base_lr: f64,
    /// Samples per mega-batch.
    pub mega_batch_size: usize,
    /// Algorithm 1 parameters.
    pub scaling_params: ScalingParams,
    /// Hidden-layer width of the MLP.
    pub hidden: usize,
    /// Master seed: drives init, shuffling, and device jitter.
    pub seed: u64,
    /// Stop once simulated time reaches this many seconds (checked at
    /// mega-batch boundaries). At least one of the two limits must be set.
    pub time_limit: Option<f64>,
    /// Stop after this many mega-batches.
    pub mega_batch_limit: Option<usize>,
    /// Evaluation chunk size (bounds dense activation memory).
    pub eval_chunk: usize,
    /// Record a dispatch trace (Fig. 2).
    pub trace: bool,
    /// Scale applied to fixed overheads (kernel launch, transfer setup).
    /// Set this to the dataset's linear scale when training scaled-down
    /// synthetic twins, so the compute-to-overhead ratio matches what the
    /// paper's full-size datasets exhibit (see `DESIGN.md` §2). 1.0 = real
    /// hardware constants.
    pub overhead_scale: f64,
    /// Optional scaling-frequency adaptation (§III-A): once batch sizes are
    /// stable or oscillating, the interval between Algorithm 1 invocations
    /// grows up to `(tolerance, max_interval)`. `None` (the paper default)
    /// scales after every mega-batch.
    pub scaling_schedule: Option<(f64, usize)>,
    /// Mid-training device speed changes, `(mega_batch_index, gpu, factor)`
    /// — applied before the given mega-batch begins. Models thermal
    /// throttling / DVFS / co-tenant interference and exercises Adaptive
    /// SGD's ability to re-balance at runtime.
    pub speed_events: Vec<(usize, usize, f64)>,
    /// Optional seeded fault plan (straggler spikes, stalls, device loss,
    /// merge-time OOM) injected against the deterministic scheduling loop;
    /// the trainer degrades gracefully (see [`chaos`]). Requires
    /// [`MergeInterval::MegaBatch`]. `None` injects nothing and skips all
    /// chaos bookkeeping.
    pub fault_plan: Option<FaultPlan>,
    /// Storage precision of the merge/transfer tier (arena buffers, message
    /// payloads, simulated replica transfers). [`Precision::F32`] is the
    /// paper-faithful default; [`Precision::Bf16`] halves merge-stage bytes
    /// while all accumulation (all-reduce, momentum, blending) stays f32 —
    /// see `DESIGN.md`, "Precision tiers & rounding contract". Replica
    /// training math is f32 either way.
    pub precision: Precision,
    /// LSH-sampled softmax configuration (`ASGD_SOFTMAX=sampled`); `None`
    /// (the default) trains the exact dense output layer. Sampled runs stay
    /// bit-deterministic: outcomes are a pure function of
    /// `(seed, fault_plan, sampled_softmax.seed)` at any `ASGD_THREADS`.
    pub sampled_softmax: Option<SampledSoftmax>,
    /// Multi-server fleet shape; `None` (the default) is the paper's
    /// single-server setup with the flat all-reduce.
    pub cluster: Option<ClusterConfig>,
    /// Sparse delta merge (`ASGD_SPARSE_MERGE=1`): replicas ship only the
    /// rows they dirtied since the last sync (the sampled softmax's
    /// candidate sets make the dirty set exact and free) and the merge
    /// charges a union-sized schedule instead of a model-sized one.
    /// Effective only with [`RunConfig::sampled_softmax`] set and a
    /// `SetModel`-redistributing merge rule (Normalized/Average); Crossbow
    /// blends every parameter, so it silently stays on the dense path.
    /// Results are **bit-identical** to the dense merge — the reduction
    /// arithmetic is unchanged, only the simulated wire traffic shrinks
    /// (see `asgd_collective::sparse`).
    pub sparse_merge: bool,
    /// Union-density threshold (`union elems / param_len`) above which a
    /// sparse merge falls back to the dense schedule (timing-only).
    pub sparse_max_density: f64,
}

impl RunConfig {
    /// Paper defaults derived from `b_max`: a mega-batch of
    /// `batches_per_mega · b_max` samples (the paper uses 100 batches),
    /// `b_min = b_max/8`, `β = b_min/2`, hidden = 128.
    pub fn paper_defaults(b_max: usize, batches_per_mega: usize) -> Self {
        RunConfig {
            b_max,
            base_lr: 0.1,
            mega_batch_size: b_max * batches_per_mega.max(1),
            scaling_params: ScalingParams::paper_defaults(b_max),
            hidden: 128,
            seed: 42,
            time_limit: None,
            mega_batch_limit: None,
            eval_chunk: 256,
            trace: false,
            overhead_scale: 1.0,
            scaling_schedule: None,
            speed_events: Vec::new(),
            fault_plan: None,
            precision: Precision::F32,
            sampled_softmax: None,
            cluster: None,
            sparse_merge: false,
            sparse_max_density: asgd_collective::DEFAULT_MAX_DENSITY,
        }
    }
}

/// The training engine: couples a [`TrainerSpec`] with a simulated server.
#[derive(Debug, Clone)]
pub struct Trainer {
    spec: TrainerSpec,
    profiles: Vec<DeviceProfile>,
    config: RunConfig,
}

impl Trainer {
    /// Creates a trainer over the given device profiles.
    pub fn new(spec: TrainerSpec, profiles: Vec<DeviceProfile>, config: RunConfig) -> Self {
        assert!(!profiles.is_empty(), "need at least one device");
        assert!(
            config.time_limit.is_some() || config.mega_batch_limit.is_some(),
            "set a time limit or a mega-batch limit"
        );
        assert!(
            config.fault_plan.is_none() || spec.merge_interval == MergeInterval::MegaBatch,
            "fault injection requires merge-per-mega-batch"
        );
        if let Some(cl) = &config.cluster {
            assert_eq!(
                cl.servers * cl.devices_per_server,
                profiles.len(),
                "cluster shape does not match the device count"
            );
        }
        Self {
            spec,
            profiles,
            config,
        }
    }

    /// The spec this trainer runs.
    pub fn spec(&self) -> &TrainerSpec {
        &self.spec
    }

    /// Trains on `dataset` until a limit is hit; returns the full record.
    pub fn run(&self, dataset: &XmlDataset) -> RunResult {
        self.run_with_state(dataset, None)
    }

    /// Resumes training from a checkpoint (see [`crate::checkpoint`]):
    /// model, momentum memory, and per-GPU hyperparameters continue where
    /// the snapshot left off; merge indices continue from
    /// `state.megas_done`. Device clocks restart at zero (a resumed run
    /// continues the *optimization*, not the timing trace).
    pub fn run_resumed(&self, dataset: &XmlDataset, state: &TrainingState) -> RunResult {
        self.run_with_state(dataset, Some(state))
    }

    fn run_with_state(&self, dataset: &XmlDataset, resume: Option<&TrainingState>) -> RunResult {
        let n = self.profiles.len();
        let cfg = &self.config;
        let mconfig = MlpConfig {
            num_features: dataset.num_features,
            hidden: cfg.hidden,
            num_classes: dataset.num_labels,
        };
        let mut init_model = Mlp::init(&mconfig, cfg.seed);
        let mut start_index = 0usize;
        let mut hypers: Vec<GpuHyper> = (0..n)
            .map(|_| GpuHyper::initial(cfg.b_max, cfg.base_lr))
            .collect();
        if let Some(state) = resume {
            assert_eq!(
                state.global.len(),
                mconfig.param_len(),
                "checkpoint does not match the model architecture"
            );
            assert_eq!(
                state.hypers.len(),
                n,
                "checkpoint does not match the GPU count"
            );
            init_model.load_flat(&state.global);
            hypers = state.hypers.clone();
            start_index = state.megas_done as usize;
        }
        // Fixed overheads scale with the dataset (see `RunConfig::overhead_scale`).
        let profiles: Vec<DeviceProfile> = self
            .profiles
            .iter()
            .map(|p| p.clone().with_overhead_scale(cfg.overhead_scale))
            .collect();
        let mut launch_model = LaunchModel::default_cuda();
        launch_model.base_overhead_s *= cfg.overhead_scale;
        let track_in_flight = cfg.fault_plan.as_ref().is_some_and(|p| p.has_device_loss());
        let param_len = mconfig.param_len();
        let mut state = SchedulerState {
            spec: &self.spec,
            cfg,
            mconfig,
            dataset,
            devices: build_server(&profiles, cfg.seed),
            ctx: match &cfg.cluster {
                // The single-server context is untouched by the cluster
                // feature: same constructor, same timing bits.
                None => CollectiveContext::new(
                    Topology::pcie(n).with_setup_scale(cfg.overhead_scale),
                    &profiles,
                ),
                Some(cl) => CollectiveContext::cluster(
                    &ClusterTopology::ethernet(cl.servers, cl.devices_per_server)
                        .with_setup_scale(cfg.overhead_scale),
                    &profiles,
                ),
            },
            launch_model,
            trace: if cfg.trace {
                TraceLog::enabled()
            } else {
                TraceLog::disabled()
            },
            stream: SampleStream::new(
                dataset.train.len(),
                cfg.seed ^ 0xA5A5_5A5A ^ (start_index as u64) << 17,
            ),
            budget: MegaBatchBudget::new(cfg.mega_batch_size),
            hypers,
            arena: MergeArena::new(n, mconfig.param_len(), cfg.precision),
            global: init_model.to_flat(),
            prev_global: resume
                .map(|s| s.prev_global.clone())
                .unwrap_or_else(|| init_model.to_flat()),
            eval_model: init_model.clone(),
            recorder: RunRecorder::new(),
            rr_cursor: 0,
            batches_dispatched: 0,
            start_index,
            scaling_scheduler: cfg
                .scaling_schedule
                .map(|(tol, cap)| ScalingScheduler::new(tol, cap)),
            alive: vec![true; n],
            in_flight: vec![Vec::new(); n],
            track_in_flight,
            chaos: ChaosStats::default(),
            // Enough for the pooled merge scratch (n replica-sized buffers
            // at the run's storage precision) plus slack; an OOM fault hogs
            // the capacity so the scratch request genuinely fails.
            merge_memory: MemoryTracker::new((n * param_len * cfg.precision.bytes()) as u64 + 4096),
            profiles: profiles.clone(),
            delta_arena: (cfg.sparse_merge
                && cfg.sampled_softmax.is_some()
                && !matches!(self.spec.merge_rule, MergeRule::Crossbow { .. }))
            .then(|| DeltaArena::new(n, cfg.precision)),
            sparse_layout: SparseLayout::new(
                mconfig.num_features,
                mconfig.hidden,
                mconfig.num_classes,
            ),
            sparse_stats: SparseMergeStats::default(),
        };
        if state.delta_arena.is_some() {
            // Sparse mode parks each manager's last-synced base in its arena
            // slot; seed every slot with the init model all replicas start
            // from (`drive` sends no initial `SetModel`).
            for g in 0..n {
                let mut buf = state.arena.lend(g);
                init_model.write_flat_buf(&mut buf);
                state.arena.restore(g, buf);
            }
        }

        // std scoped threads: a panicking manager propagates out of the
        // scope when it joins, same observable behavior as the crossbeam
        // scope this replaced.
        std::thread::scope(|s| {
            let (from_tx, from_rx) = channel();
            let mut to_managers: Vec<Sender<ToManager>> = Vec::with_capacity(n);
            for g in 0..n {
                let (tx, rx) = channel();
                let replica = init_model.clone();
                let ftx = from_tx.clone();
                let sampled = cfg.sampled_softmax;
                s.spawn(move || manager::run_manager(g, replica, dataset, rx, ftx, sampled));
                to_managers.push(tx);
            }
            drop(from_tx);
            state.drive(&to_managers, &from_rx);
            for tx in &to_managers {
                let _ = tx.send(ToManager::Stop);
            }
        });

        let sparse_merge = state
            .delta_arena
            .is_some()
            .then(|| state.sparse_stats.clone());
        let megas_run = state.recorder.records().len() as u64;
        let final_state = TrainingState {
            global: state.global.clone(),
            prev_global: state.prev_global.clone(),
            hypers: state.hypers.clone(),
            megas_done: start_index as u64 + megas_run,
        };
        RunResult {
            name: self.spec.name.clone(),
            records: state.recorder.into_records(),
            final_model: state.global,
            trace: state.trace.render(),
            final_state: Some(final_state),
            chaos: state.chaos,
            sparse_merge,
        }
    }
}

/// All mutable scheduler-side state, grouped so the main loop reads cleanly.
struct SchedulerState<'a> {
    spec: &'a TrainerSpec,
    cfg: &'a RunConfig,
    mconfig: MlpConfig,
    dataset: &'a XmlDataset,
    devices: Vec<Device>,
    ctx: CollectiveContext,
    launch_model: LaunchModel,
    trace: TraceLog,
    stream: SampleStream,
    budget: MegaBatchBudget,
    hypers: Vec<GpuHyper>,
    /// Persistent flat-model buffers recycled across merges (see [`arena`]).
    arena: MergeArena,
    global: Vec<f32>,
    prev_global: Vec<f32>,
    eval_model: Mlp,
    recorder: RunRecorder,
    rr_cursor: usize,
    batches_dispatched: usize,
    start_index: usize,
    scaling_scheduler: Option<ScalingScheduler>,
    /// Which replicas still participate (all `true` until a DeviceLoss).
    alive: Vec<bool>,
    /// Per-GPU sample-id batches dispatched since the last merge — the work
    /// that dies with a replica. Populated only when `track_in_flight`.
    in_flight: Vec<Vec<Vec<usize>>>,
    /// Whether the fault plan contains a device loss (gates the in-flight
    /// clones so the fault-free hot path stays zero-overhead).
    track_in_flight: bool,
    /// Chaos accounting (empty unless a fault plan is set).
    chaos: ChaosStats,
    /// Memory budget of the merge stage's pooled scratch.
    merge_memory: MemoryTracker,
    /// Overhead-scaled device profiles (kept for rebuilding a survivor-sized
    /// collective context after a device loss).
    profiles: Vec<DeviceProfile>,
    /// `Some` iff the sparse delta merge is active: recycled per-replica
    /// `(rows, payload)` pairs. When active, [`Self::arena`] slots double as
    /// each manager's *base* — the payload of its last `SetModel` — between
    /// merges, so scattering a delta over the slot reconstructs the
    /// replica's flat buffer bit-for-bit.
    delta_arena: Option<DeltaArena>,
    /// Row space of the sparse wire format.
    sparse_layout: SparseLayout,
    /// Sparse-merge accounting (untouched unless `delta_arena` is set).
    sparse_stats: SparseMergeStats,
}

impl SchedulerState<'_> {
    fn n(&self) -> usize {
        self.devices.len()
    }

    /// Runs the whole training loop.
    fn drive(&mut self, to: &[Sender<ToManager>], from: &Receiver<FromManager>) {
        // The model replica moves to every GPU once, at training start
        // (within a mega-batch only batches move, §IV), at the run's
        // storage precision (bf16 halves the bytes on the wire).
        let transfer =
            model_transfer_kernels_sized(&self.mconfig, true, self.cfg.precision.bytes());
        for d in self.devices.iter_mut() {
            d.execute_all(&transfer);
        }
        // Sampled mode hashes every output neuron at startup.
        self.charge_lsh_rebuild();

        let mut mega_index = 0usize;
        loop {
            for &(at, gpu, factor) in &self.cfg.speed_events {
                if at == mega_index {
                    assert!(gpu < self.devices.len(), "speed event gpu out of range");
                    self.devices[gpu].set_speed_factor(factor);
                }
            }
            self.budget.refill();
            let mega = self.run_mega_batch(to, from, mega_index);
            let sim_time = self.max_clock().secs();
            self.eval_model.load_flat(&self.global);
            let accuracy = eval::top1_accuracy(
                &self.eval_model,
                &self.dataset.test.features,
                &self.dataset.test.labels,
                self.cfg.eval_chunk,
            );
            self.recorder.push(MergeRecord {
                merge_index: self.start_index + mega_index,
                sim_time,
                epochs: self.stream.epochs(),
                accuracy,
                mean_loss: mega.mean_loss,
                batch_sizes: self.hypers.iter().map(|h| h.batch_size).collect(),
                updates: mega.updates,
                perturbed: mega.perturbed,
                merge_weights: mega.weights,
            });
            mega_index += 1;
            if let Some(limit) = self.cfg.mega_batch_limit {
                if mega_index >= limit {
                    break;
                }
            }
            if let Some(limit) = self.cfg.time_limit {
                if sim_time >= limit {
                    break;
                }
            }
        }
    }

    /// Processes one mega-batch (dispatch + merge(s) + scaling); returns its
    /// summary for recording.
    fn run_mega_batch(
        &mut self,
        to: &[Sender<ToManager>],
        from: &Receiver<FromManager>,
        mega_index: usize,
    ) -> MegaSummary {
        let n = self.n();
        // Losses are accumulated per GPU (each manager's replies arrive in
        // its own FIFO order) and summed in GPU-index order afterwards, so
        // the mean loss is independent of cross-manager arrival interleaving.
        let mut loss_sums = vec![0.0f64; n];
        let mut loss_counts = vec![0usize; n];
        let mut interval_updates = vec![0u64; n];
        let mut interval_samples = vec![0u64; n];
        let mut perturbed = false;
        let mut weights = vec![1.0 / n as f64; n];

        let deadline = self.cfg.time_limit.unwrap_or(f64::INFINITY);
        match self.spec.merge_interval {
            MergeInterval::MegaBatch => {
                let mut dispatched = 0usize;
                let mut extra_trains = 0usize;
                loop {
                    extra_trains += self.fire_due_faults(
                        to,
                        mega_index,
                        dispatched,
                        false,
                        &mut interval_updates,
                        &mut interval_samples,
                    );
                    let g = self.pick_gpu();
                    // Stop dispatching once the budgeted time is exhausted
                    // (the merge still runs, so the final state is global).
                    if self.devices[g].now().secs() >= deadline {
                        break;
                    }
                    let want = self.hypers[g].rounded_batch();
                    let Some(got) = self.budget.grant(want) else {
                        break;
                    };
                    self.dispatch_batch(g, got, to);
                    interval_updates[g] += 1;
                    interval_samples[g] += got as u64;
                    dispatched += 1;
                }
                // Events whose dispatch ordinal was never reached fire at
                // the merge boundary (no event is silently dropped).
                extra_trains += self.fire_due_faults(
                    to,
                    mega_index,
                    dispatched,
                    true,
                    &mut interval_updates,
                    &mut interval_samples,
                );
                self.drain_trained(
                    from,
                    dispatched + extra_trains,
                    &mut loss_sums,
                    &mut loss_counts,
                );
                let decision = self.merge(to, from, mega_index);
                perturbed = decision.perturbed;
                weights = decision.weights;
                if self.track_in_flight {
                    // Merged work can no longer die with a replica.
                    for f in &mut self.in_flight {
                        f.clear();
                    }
                }
                let scale_now = match &mut self.scaling_scheduler {
                    Some(sched) => {
                        let sizes: Vec<f64> = self.hypers.iter().map(|h| h.batch_size).collect();
                        sched.observe_and_decide(&sizes)
                    }
                    None => true,
                };
                if scale_now {
                    self.scale_survivors();
                }
                for h in &mut self.hypers {
                    h.updates = 0;
                }
            }
            MergeInterval::EveryRound => {
                loop {
                    if self.max_clock().secs() >= deadline {
                        break;
                    }
                    let mut sent = 0usize;
                    #[allow(clippy::needless_range_loop)]
                    // g indexes hypers, devices, AND interval_updates
                    for g in 0..n {
                        let want = self.hypers[g].rounded_batch();
                        let Some(got) = self.budget.grant(want) else {
                            break;
                        };
                        self.dispatch_batch(g, got, to);
                        interval_updates[g] += 1;
                        interval_samples[g] += got as u64;
                        sent += 1;
                    }
                    if sent == 0 {
                        break;
                    }
                    self.drain_trained(from, sent, &mut loss_sums, &mut loss_counts);
                    let decision = self.merge(to, from, mega_index);
                    weights = decision.weights;
                    for h in &mut self.hypers {
                        h.updates = 0;
                    }
                    if self.budget.remaining() == 0 {
                        break;
                    }
                }
            }
        }

        // Commit accounting and the interval mean loss over survivors only:
        // a dead replica's results never reach the global model.
        let mut loss_sum = 0.0f64;
        let mut loss_n = 0usize;
        for g in 0..n {
            if self.alive[g] {
                loss_sum += loss_sums[g];
                loss_n += loss_counts[g];
            }
        }
        if self.cfg.fault_plan.is_some() {
            for g in 0..n {
                if self.alive[g] {
                    self.chaos.batches_committed += interval_updates[g];
                    self.chaos.samples_committed += interval_samples[g];
                }
            }
        }

        MegaSummary {
            mean_loss: if loss_n == 0 {
                0.0
            } else {
                loss_sum / loss_n as f64
            },
            updates: interval_updates,
            perturbed,
            weights,
        }
    }

    /// Runs the configured Algorithm 1 variant over the surviving replicas
    /// (the scaler's mean update count must not be dragged down by dead
    /// replicas pinned at zero updates).
    fn scale_survivors(&mut self) {
        let rule = match self.spec.scaling {
            ScalingPolicy::Adaptive => crate::hyper::ScalingRule::Linear,
            ScalingPolicy::AdaptiveMultiplicative => crate::hyper::ScalingRule::Multiplicative,
            ScalingPolicy::Fixed => return,
        };
        if self.alive.iter().all(|&a| a) {
            crate::hyper::scale_batch_sizes_with(&mut self.hypers, &self.cfg.scaling_params, rule);
            return;
        }
        let alive_idx: Vec<usize> = (0..self.n()).filter(|&g| self.alive[g]).collect();
        let mut sub: Vec<GpuHyper> = alive_idx.iter().map(|&g| self.hypers[g].clone()).collect();
        crate::hyper::scale_batch_sizes_with(&mut sub, &self.cfg.scaling_params, rule);
        for (&g, h) in alive_idx.iter().zip(sub) {
            self.hypers[g] = h;
        }
    }

    /// Chooses the GPU for the next batch per the dispatch policy. Dead
    /// replicas are never picked.
    fn pick_gpu(&mut self) -> usize {
        match self.spec.dispatch {
            DispatchPolicy::Dynamic => {
                // First-available = smallest virtual clock; ties (exact f64
                // equality, e.g. at t = 0) break by id for determinism.
                (0..self.n())
                    .filter(|&g| self.alive[g])
                    .min_by(|&a, &b| {
                        self.devices[a]
                            .now()
                            .partial_cmp(&self.devices[b].now())
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.cmp(&b))
                    })
                    .expect("at least one device alive")
            }
            DispatchPolicy::Static => {
                let mut g = self.rr_cursor;
                while !self.alive[g] {
                    g = (g + 1) % self.n();
                }
                self.rr_cursor = (g + 1) % self.n();
                g
            }
        }
    }

    /// Cuts a batch from the stream, charges its kernels to device `g`, and
    /// sends the numeric work to manager `g`.
    fn dispatch_batch(&mut self, g: usize, got: usize, to: &[Sender<ToManager>]) {
        let ids = self.stream.take(got);
        self.charge_and_send(g, ids, to);
    }

    /// Charges an id-batch's kernels to device `g` and sends the numeric
    /// work to manager `g` at its current learning rate. Shared by the
    /// primary dispatch path and the device-loss re-dispatch path — which is
    /// what makes candidate sets loss-proof: the sample seed is a function
    /// of the ids alone, so a re-dispatched batch reselects identically.
    fn charge_and_send(&mut self, g: usize, ids: Vec<usize>, to: &[Sender<ToManager>]) {
        let got = ids.len();
        let nnz: usize = ids
            .iter()
            .map(|&i| self.dataset.train.features.row_nnz(i))
            .sum();
        let kinds = match self.cfg.sampled_softmax {
            Some(s) => {
                let cand = self.candidate_estimate(&ids, s.neg_samples);
                sampled_epoch_kernels(&self.mconfig, got, nnz, cand, s.tables)
            }
            None => epoch_kernels(&self.mconfig, got, nnz),
        };
        let extra = overhead_delta_for(&kinds, self.spec.fusion, &self.launch_model, self.n());
        let sample_seed = batch_sample_seed(&ids, self.cfg.sampled_softmax.map_or(0, |s| s.seed));
        let t0 = self.devices[g].now();
        self.devices[g].charge_epoch(&kinds, self.spec.compute_overhead, extra);
        self.trace.record(
            DeviceId(g),
            t0,
            self.devices[g].now(),
            format!(
                "batch {} (size {got}, nnz {nnz}, lr {:.4})",
                self.batches_dispatched, self.hypers[g].lr
            ),
        );
        self.batches_dispatched += 1;
        self.hypers[g].updates += 1;
        if self.track_in_flight {
            self.in_flight[g].push(ids.clone());
        }
        to[g]
            .send(ToManager::Train {
                batch_ids: ids,
                lr: self.hypers[g].lr as f32,
                sample_seed,
            })
            .expect("manager channel closed");
    }

    /// The exact size of the candidate set the sampler will select for this
    /// batch — `min(|positive union| + neg_samples, classes)` — used for
    /// cost charging (the scheduler never runs the LSH itself).
    fn candidate_estimate(&self, ids: &[usize], neg_samples: usize) -> usize {
        let mut pos: Vec<u32> = ids
            .iter()
            .flat_map(|&i| self.dataset.train.labels[i].iter().copied())
            .collect();
        pos.sort_unstable();
        pos.dedup();
        (pos.len() + neg_samples).min(self.mconfig.num_classes)
    }

    /// Charges the per-sync LSH rebuild (sampled mode only) to every
    /// surviving device: each manager re-hashes all output neurons after a
    /// model sync (startup, redistribute, blend).
    fn charge_lsh_rebuild(&mut self) {
        let Some(s) = self.cfg.sampled_softmax else {
            return;
        };
        let kernels = lsh_rebuild_kernels(&self.mconfig, s.tables, s.k_bits);
        for (d, &a) in self.devices.iter_mut().zip(&self.alive) {
            if a {
                d.execute_all(&kernels);
            }
        }
    }

    /// Receives exactly `count` `Trained` messages, accumulating losses
    /// per GPU (callers sum the per-GPU buckets in index order, keeping the
    /// mean loss independent of cross-manager arrival interleaving).
    fn drain_trained(
        &mut self,
        from: &Receiver<FromManager>,
        count: usize,
        loss_sums: &mut [f64],
        loss_counts: &mut [usize],
    ) {
        for _ in 0..count {
            match from.recv().expect("manager channel closed") {
                FromManager::Trained {
                    gpu,
                    loss,
                    batch_size,
                } => {
                    debug_assert!(gpu < self.n(), "reply from unknown manager");
                    debug_assert!(batch_size > 0, "empty batch trained");
                    loss_sums[gpu] += loss;
                    loss_counts[gpu] += 1;
                }
                FromManager::Model { .. }
                | FromManager::Redistributed { .. }
                | FromManager::Delta { .. } => {
                    unreachable!("merge-phase reply outside a merge phase")
                }
            }
        }
    }

    /// One full model-merging stage: collect replicas, compute weights,
    /// all-reduce, global update, redistribute, advance clocks.
    ///
    /// Model-sized payloads live in the scheduler's [`MergeArena`]: every
    /// buffer is lent to its manager for the gather (`GetModel` → `Model`),
    /// all-reduced in place — after which **all** buffers hold the merged
    /// model — then lent again for redistribution (`SetModel`/`Blend` →
    /// `Redistributed`). Steady-state merges allocate nothing model-sized.
    fn merge(
        &mut self,
        to: &[Sender<ToManager>],
        from: &Receiver<FromManager>,
        mega_index: usize,
    ) -> MergeDecision {
        if self.alive.iter().any(|&a| !a) {
            return self.merge_survivors(to, from, mega_index);
        }
        let n = self.n();
        if let Some(arena) = self.delta_arena.as_mut() {
            for (g, tx) in to.iter().enumerate() {
                let (rows, payload) = arena.lend(g);
                tx.send(ToManager::GetDelta { rows, payload })
                    .expect("manager channel closed");
            }
        } else {
            for (g, tx) in to.iter().enumerate() {
                tx.send(ToManager::GetModel {
                    buf: self.arena.lend(g),
                })
                .expect("manager channel closed");
            }
        }
        let mut norms = vec![0.0f64; n];
        let mut received = 0usize;
        while received < n {
            match from.recv().expect("manager channel closed") {
                FromManager::Model {
                    gpu,
                    flat,
                    norm_per_param,
                } => {
                    self.arena.restore(gpu, flat);
                    norms[gpu] = norm_per_param;
                    received += 1;
                }
                FromManager::Delta {
                    gpu,
                    rows,
                    payload,
                    norm_per_param,
                } => {
                    // Scattering the delta over the replica's parked base
                    // (its last `SetModel` payload) reconstructs exactly the
                    // buffer a dense gather would have produced.
                    let mut base = self.arena.lend(gpu);
                    scatter_delta(&self.sparse_layout, &rows, &payload, &mut base);
                    self.arena.restore(gpu, base);
                    self.delta_arena
                        .as_mut()
                        .expect("Delta reply without a delta arena")
                        .restore(gpu, rows, payload);
                    norms[gpu] = norm_per_param;
                    received += 1;
                }
                FromManager::Trained { .. } | FromManager::Redistributed { .. } => {
                    unreachable!("non-gather reply during the merge gather")
                }
            }
        }

        let decision = match self.spec.merge_rule {
            MergeRule::Normalized(params) => compute_merge_weights(&self.hypers, &norms, &params),
            MergeRule::Average { .. } | MergeRule::Crossbow { .. } => MergeDecision {
                weights: vec![1.0 / n as f64; n],
                by_updates: false,
                perturbed: false,
            },
        };

        // Cluster merges cross the slow inter-node link; Algorithm 2's α
        // weights assume every replica's per-mega update count stays inside
        // the band the batch-size clamps imply (§III-A) — the staleness
        // bound over the full fleet pins that here. Injected faults
        // (stalls, node losses) break the symmetry on purpose, so the bound
        // is a clean-run contract only.
        if self.cfg.cluster.is_some() && self.cfg.fault_plan.is_none() {
            let bound =
                StalenessBound::derive(&self.cfg.scaling_params, self.cfg.mega_batch_size, n);
            let updates: Vec<u64> = self.hypers.iter().map(|h| h.updates).collect();
            debug_assert!(
                bound.check(&updates),
                "staleness bound violated at merge {mega_index}: {updates:?} vs {bound:?}"
            );
        }
        let arrivals: Vec<SimTime> = self.devices.iter().map(|d| d.now()).collect();
        let timing = chaos::reduce_with_oom_fallback(
            &mut self.merge_memory,
            &mut self.chaos,
            self.cfg.fault_plan.as_ref(),
            self.spec.allreduce,
            self.cfg.cluster.as_ref().map(|cl| cl.inter),
            self.arena.buffers_mut(),
            &decision.weights,
            &self.ctx,
            &arrivals,
            mega_index,
        );
        let timing = match &self.delta_arena {
            None => timing,
            Some(da) => {
                let gpus: Vec<usize> = (0..n).collect();
                sparse_timing_or_dense(
                    da,
                    &self.sparse_layout,
                    &mut self.sparse_stats,
                    &SparseMergePlan {
                        algo: self.spec.allreduce,
                        inter: self.cfg.cluster.as_ref().map(|cl| cl.inter),
                        elem_bytes: self.cfg.precision.bytes(),
                        max_density: self.cfg.sparse_max_density,
                    },
                    &gpus,
                    &self.ctx,
                    &arrivals,
                    timing,
                )
            }
        };

        match self.spec.merge_rule {
            MergeRule::Normalized(params) => {
                self.redistribute_set_model(to, params.gamma);
            }
            MergeRule::Average { gamma } => {
                self.redistribute_set_model(to, gamma);
            }
            MergeRule::Crossbow { pull } => {
                // The merged model becomes the new global; each buffer
                // already holds it, so the blend targets ship with zero
                // copies.
                copy_to_global(self.arena.buffer(0), &mut self.global);
                for (g, tx) in to.iter().enumerate() {
                    tx.send(ToManager::Blend {
                        target: self.arena.lend(g),
                        pull: pull as f32,
                    })
                    .expect("manager channel closed");
                }
            }
        }

        // Drain the redistribution acks, bringing every buffer home for the
        // next merge.
        let mut returned = 0usize;
        while returned < n {
            match from.recv().expect("manager channel closed") {
                FromManager::Redistributed { gpu, buf } => {
                    self.arena.restore(gpu, buf);
                    returned += 1;
                }
                FromManager::Trained { .. }
                | FromManager::Model { .. }
                | FromManager::Delta { .. } => {
                    unreachable!("non-Redistributed reply during redistribution")
                }
            }
        }

        let t0 = timing.start;
        for d in self.devices.iter_mut() {
            d.advance_to(timing.end);
        }
        // Sampled mode: every manager re-hashes the output neurons against
        // the freshly synced model.
        self.charge_lsh_rebuild();
        self.trace.record(
            DeviceId(0),
            t0,
            timing.end,
            format!(
                "merge (weights {:?}, perturbed {})",
                decision
                    .weights
                    .iter()
                    .map(|w| (w * 1000.0).round() / 1000.0)
                    .collect::<Vec<_>>(),
                decision.perturbed
            ),
        );
        decision
    }

    /// Applies the momentum global update from the merged model (held by
    /// every arena buffer after the all-reduce) and redistributes the new
    /// global through the recycled buffers.
    fn redistribute_set_model(&mut self, to: &[Sender<ToManager>], gamma: f64) {
        apply_global_update_flat(
            self.arena.buffer(0),
            &mut self.global,
            &mut self.prev_global,
            gamma,
        );
        let mut bufs: Vec<FlatVec> = (0..to.len()).map(|g| self.arena.lend(g)).collect();
        crate::merging::redistribute_global(&self.global, &mut bufs);
        for (tx, buf) in to.iter().zip(bufs) {
            tx.send(ToManager::SetModel(buf))
                .expect("manager channel closed");
        }
    }

    fn max_clock(&self) -> SimTime {
        self.devices
            .iter()
            .zip(&self.alive)
            .filter(|(_, &a)| a)
            .map(|(d, _)| d.now())
            .fold(SimTime::ZERO, SimTime::max)
    }
}

/// Per-mega-batch summary used for recording.
struct MegaSummary {
    mean_loss: f64,
    updates: Vec<u64>,
    perturbed: bool,
    weights: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms;
    use asgd_collective::allreduce;
    use asgd_data::{generate, DatasetSpec};
    use asgd_gpusim::profile::{heterogeneous_server, homogeneous_server};

    fn quick_config() -> RunConfig {
        let mut c = RunConfig::paper_defaults(32, 4);
        c.hidden = 12;
        c.mega_batch_limit = Some(4);
        c.eval_chunk = 64;
        c
    }

    fn dataset() -> XmlDataset {
        generate(&DatasetSpec::tiny("trainer"), 5)
    }

    #[test]
    fn adaptive_runs_and_records() {
        let ds = dataset();
        let result = Trainer::new(
            algorithms::adaptive_sgd(),
            heterogeneous_server(2),
            quick_config(),
        )
        .run(&ds);
        assert_eq!(result.records.len(), 4);
        // Time moves forward strictly across mega-batches.
        for w in result.records.windows(2) {
            assert!(w[1].sim_time > w[0].sim_time);
            assert!(w[1].epochs > w[0].epochs);
        }
        assert!(!result.final_model.is_empty());
    }

    #[test]
    fn adaptive_is_deterministic_across_runs() {
        let ds = dataset();
        let run = || {
            Trainer::new(
                algorithms::adaptive_sgd(),
                heterogeneous_server(2),
                quick_config(),
            )
            .run(&ds)
        };
        let a = run();
        let b = run();
        assert_eq!(a.final_model, b.final_model);
        assert_eq!(
            a.records.iter().map(|r| r.sim_time).collect::<Vec<_>>(),
            b.records.iter().map(|r| r.sim_time).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dynamic_dispatch_gives_slow_gpu_fewer_updates() {
        let ds = dataset();
        // Very skewed server: second GPU at half speed.
        let profiles = vec![
            asgd_gpusim::DeviceProfile::v100("fast"),
            asgd_gpusim::DeviceProfile::v100("slow").with_speed(0.5),
        ];
        let mut config = quick_config();
        config.mega_batch_limit = Some(1);
        // Enough batches per mega-batch that the 2x speed gap dominates the
        // per-batch nnz variance of the synthetic dataset.
        config.mega_batch_size = config.b_max * 24;
        let result = Trainer::new(algorithms::adaptive_sgd(), profiles, config).run(&ds);
        let updates = &result.records[0].updates;
        assert!(
            updates[0] > updates[1],
            "fast GPU should run more batches: {updates:?}"
        );
    }

    #[test]
    fn elastic_static_dispatch_gives_equal_updates() {
        let ds = dataset();
        let profiles = vec![
            asgd_gpusim::DeviceProfile::v100("fast"),
            asgd_gpusim::DeviceProfile::v100("slow").with_speed(0.5),
        ];
        let mut config = quick_config();
        config.mega_batch_limit = Some(1);
        let result = Trainer::new(algorithms::elastic_sgd(), profiles, config).run(&ds);
        let updates = &result.records[0].updates;
        assert_eq!(updates[0], updates[1], "static dispatch must be equal");
    }

    #[test]
    fn adaptive_batch_sizes_move_on_heterogeneous_server() {
        let ds = dataset();
        let profiles = vec![
            asgd_gpusim::DeviceProfile::v100("fast"),
            asgd_gpusim::DeviceProfile::v100("slow").with_speed(0.5),
        ];
        let mut config = quick_config();
        config.mega_batch_limit = Some(6);
        // As above: a wide mega-batch makes the update-count gap (and thus
        // Algorithm 1's batch-size movement) robust to dataset sparsity noise.
        config.mega_batch_size = config.b_max * 24;
        let result = Trainer::new(algorithms::adaptive_sgd(), profiles, config).run(&ds);
        let last = result.records.last().unwrap();
        assert!(
            last.batch_sizes[0] > last.batch_sizes[1],
            "faster GPU should end with the larger batch: {:?}",
            last.batch_sizes
        );
    }

    #[test]
    fn elastic_keeps_batch_sizes_fixed() {
        let ds = dataset();
        let result = Trainer::new(
            algorithms::elastic_sgd(),
            heterogeneous_server(2),
            quick_config(),
        )
        .run(&ds);
        for r in &result.records {
            assert!(r.batch_sizes.iter().all(|&b| b == 32.0));
        }
    }

    #[test]
    fn sync_sgd_merges_every_round_and_replicas_stay_identical() {
        let ds = dataset();
        let mut config = quick_config();
        config.mega_batch_limit = Some(2);
        let result =
            Trainer::new(algorithms::tensorflow_sync(), homogeneous_server(2), config).run(&ds);
        assert_eq!(result.records.len(), 2);
        assert!(result.records[1].accuracy >= 0.0);
    }

    #[test]
    fn crossbow_runs() {
        let ds = dataset();
        let mut config = quick_config();
        config.mega_batch_limit = Some(2);
        let result =
            Trainer::new(algorithms::crossbow_sma(), heterogeneous_server(2), config).run(&ds);
        assert_eq!(result.records.len(), 2);
    }

    #[test]
    fn single_gpu_all_algorithms_agree_on_update_counts() {
        // With one GPU, Adaptive and Elastic degenerate to mini-batch SGD
        // (the paper plots them as a single curve in Fig. 4).
        let ds = dataset();
        let mut config = quick_config();
        config.mega_batch_limit = Some(2);
        let a = Trainer::new(
            algorithms::adaptive_sgd(),
            homogeneous_server(1),
            config.clone(),
        )
        .run(&ds);
        let e = Trainer::new(algorithms::elastic_sgd(), homogeneous_server(1), config).run(&ds);
        assert_eq!(
            a.records
                .iter()
                .map(|r| r.updates.clone())
                .collect::<Vec<_>>(),
            e.records
                .iter()
                .map(|r| r.updates.clone())
                .collect::<Vec<_>>()
        );
        // Same model math: identical final replicas.
        assert_eq!(a.final_model, e.final_model);
    }

    /// The pooled merge path (collective reductions, redistribution copies,
    /// momentum update) must not depend on the worker count: a whole run is
    /// bit-identical at `ASGD_THREADS=1` and `=8`, for both the arena
    /// `SetModel` and the zero-copy `Blend` redistribution.
    #[test]
    fn run_is_bit_identical_across_thread_counts() {
        let ds = dataset();
        for spec in [algorithms::adaptive_sgd(), algorithms::crossbow_sma()] {
            let run =
                || Trainer::new(spec.clone(), heterogeneous_server(2), quick_config()).run(&ds);
            asgd_tensor::parallel::override_threads(1);
            let serial = run();
            asgd_tensor::parallel::override_threads(8);
            let pooled = run();
            asgd_tensor::parallel::override_threads(0);
            assert_eq!(
                serial.final_model, pooled.final_model,
                "{}: thread count changed the result",
                spec.name
            );
            assert_eq!(
                serial
                    .records
                    .iter()
                    .map(|r| r.accuracy)
                    .collect::<Vec<_>>(),
                pooled
                    .records
                    .iter()
                    .map(|r| r.accuracy)
                    .collect::<Vec<_>>()
            );
        }
    }

    /// Recycled arena buffers across consecutive merges produce exactly the
    /// bits fresh allocations would — no state leaks through the recycling.
    #[test]
    fn recycled_arena_merges_match_fresh_buffers() {
        use crate::trainer::arena::MergeArena;
        use asgd_gpusim::profile::homogeneous_server;

        let n = 4;
        let len = 257;
        let ctx = CollectiveContext::new(Topology::pcie(n), &homogeneous_server(n));
        let arrivals = vec![SimTime::ZERO; n];
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 2) as f64).collect();
        let replica =
            |merge: usize, g: usize, i: usize| ((merge * 31 + g * 7 + i) % 13) as f32 - 6.0;

        let mut arena = MergeArena::new(n, len, Precision::F32);
        for merge in 0..3 {
            // Arena path: recycle the same buffers, refilled like a manager
            // would via `write_flat_buf`.
            for g in 0..n {
                let mut buf = match arena.lend(g) {
                    FlatVec::F32(v) => v,
                    other => panic!("f32 arena lent {other:?}"),
                };
                buf.clear();
                buf.extend((0..len).map(|i| replica(merge, g, i)));
                arena.restore(g, FlatVec::F32(buf));
            }
            asgd_collective::allreduce_flat(
                arena.buffers_mut(),
                &weights,
                Algorithm::MultiStreamRing { partitions: n },
                &ctx,
                &arrivals,
            );
            // Fresh path: identical inputs in brand-new allocations.
            let mut fresh: Vec<Vec<f32>> = (0..n)
                .map(|g| (0..len).map(|i| replica(merge, g, i)).collect())
                .collect();
            allreduce(
                &mut fresh,
                &weights,
                Algorithm::MultiStreamRing { partitions: n },
                &ctx,
                &arrivals,
            );
            for (g, f) in fresh.iter().enumerate() {
                assert_eq!(
                    arena.buffer(g),
                    &FlatVec::F32(f.clone()),
                    "merge {merge} gpu {g}"
                );
            }
        }
    }

    /// Satellite gate for the bf16 tier: a whole bf16-precision run is
    /// bit-identical across worker thread counts, same as the f32 run —
    /// every bf16 round point is placement-independent.
    #[test]
    fn bf16_run_is_bit_identical_across_thread_counts() {
        let ds = dataset();
        let mut config = quick_config();
        config.precision = Precision::Bf16;
        for spec in [algorithms::adaptive_sgd(), algorithms::crossbow_sma()] {
            let run =
                || Trainer::new(spec.clone(), heterogeneous_server(2), config.clone()).run(&ds);
            asgd_tensor::parallel::override_threads(1);
            let serial = run();
            asgd_tensor::parallel::override_threads(8);
            let pooled = run();
            asgd_tensor::parallel::override_threads(0);
            assert_eq!(
                serial.final_model, pooled.final_model,
                "{}: thread count changed the bf16 result",
                spec.name
            );
            assert_eq!(
                serial
                    .records
                    .iter()
                    .map(|r| r.accuracy)
                    .collect::<Vec<_>>(),
                pooled
                    .records
                    .iter()
                    .map(|r| r.accuracy)
                    .collect::<Vec<_>>()
            );
        }
    }

    /// bf16 storage must not change the optimization qualitatively: the
    /// final global model stays within bf16-scale distance of the f32 run
    /// and the run still learns.
    #[test]
    fn bf16_run_tracks_f32_run_within_tolerance() {
        let ds = dataset();
        let f32_cfg = quick_config();
        let mut bf16_cfg = quick_config();
        bf16_cfg.precision = Precision::Bf16;
        let run = |cfg: RunConfig| {
            Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(2), cfg).run(&ds)
        };
        let a = run(f32_cfg);
        let b = run(bf16_cfg);
        assert_eq!(a.records.len(), b.records.len());
        let (mut num, mut den) = (0.0f64, 0.0f64);
        for (x, y) in a.final_model.iter().zip(&b.final_model) {
            num += ((x - y) as f64).powi(2);
            den += (*x as f64).powi(2);
        }
        let rel = (num / den.max(1e-30)).sqrt();
        // bf16 has ~3 decimal digits; merge-stage-only narrowing keeps the
        // drift around the format's epsilon, far below 5%.
        assert!(rel < 0.05, "bf16 drifted {rel} from the f32 trajectory");
        let f32_acc = a.records.last().unwrap().accuracy;
        let bf16_acc = b.records.last().unwrap().accuracy;
        assert!(
            (f32_acc - bf16_acc).abs() < 0.1,
            "accuracy gap too wide: f32 {f32_acc} vs bf16 {bf16_acc}"
        );
    }

    /// Tentpole determinism gate: a full sampled-softmax run — LSH tables,
    /// candidate selection, gathered-row kernels, sparse output update —
    /// is bit-identical at `ASGD_THREADS=1` and `=8`, for two different
    /// master seeds (so the property is not an artifact of one trajectory).
    #[test]
    fn sampled_run_is_bit_identical_across_thread_counts() {
        let ds = dataset();
        for seed in [42u64, 1913] {
            let mut config = quick_config();
            config.seed = seed;
            config.sampled_softmax = Some(SampledSoftmax::defaults(12));
            let run = || {
                Trainer::new(
                    algorithms::adaptive_sgd(),
                    heterogeneous_server(2),
                    config.clone(),
                )
                .run(&ds)
            };
            asgd_tensor::parallel::override_threads(1);
            let serial = run();
            asgd_tensor::parallel::override_threads(8);
            let pooled = run();
            asgd_tensor::parallel::override_threads(0);
            assert_eq!(
                serial.final_model, pooled.final_model,
                "seed {seed}: thread count changed the sampled result"
            );
            assert_eq!(
                serial
                    .records
                    .iter()
                    .map(|r| (r.mean_loss.to_bits(), r.accuracy.to_bits()))
                    .collect::<Vec<_>>(),
                pooled
                    .records
                    .iter()
                    .map(|r| (r.mean_loss.to_bits(), r.accuracy.to_bits()))
                    .collect::<Vec<_>>(),
                "seed {seed}: per-merge records drifted"
            );
        }
    }

    /// Convergence gate: sampled-softmax training must track the dense
    /// reference — same learning signal through a shrunken output layer.
    /// With the tiny 40-class space and 16 negatives the candidate sets
    /// cover most classes, so the final losses agree within the same 5%
    /// relative tolerance the bf16 tier is held to, and accuracy matches.
    #[test]
    fn sampled_run_tracks_dense_run() {
        let ds = dataset();
        let mut dense_cfg = quick_config();
        dense_cfg.mega_batch_limit = Some(12);
        dense_cfg.base_lr = 0.25;
        let mut sampled_cfg = dense_cfg.clone();
        sampled_cfg.sampled_softmax = Some(SampledSoftmax::defaults(16));
        let run = |cfg: RunConfig| {
            Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(2), cfg).run(&ds)
        };
        let dense = run(dense_cfg);
        let sampled = run(sampled_cfg);
        // Both learn.
        let first = sampled.records.first().unwrap().accuracy;
        let best = sampled.best_accuracy();
        assert!(
            best > first + 0.05,
            "sampled run is not learning: first {first}, best {best}"
        );
        // The final candidate-set loss tracks the full-softmax loss.
        let dl = dense.records.last().unwrap().mean_loss;
        let sl = sampled.records.last().unwrap().mean_loss;
        let rel = (dl - sl).abs() / dl.max(1e-30);
        assert!(
            rel < 0.05,
            "sampled loss drifted {rel} from dense ({sl} vs {dl})"
        );
        // And the models end in comparable places accuracy-wise.
        let da = dense.records.last().unwrap().accuracy;
        let sa = sampled.records.last().unwrap().accuracy;
        assert!(
            (da - sa).abs() < 0.1,
            "accuracy gap too wide: dense {da} vs sampled {sa}"
        );
    }

    /// Sampled mode must also charge differently: the simulated epoch cost
    /// at identical shapes is lower than dense (output work shrinks to the
    /// candidate set), so sim time advances less per mega-batch.
    #[test]
    fn sampled_runs_charge_cheaper_epochs_than_dense() {
        let ds = dataset();
        let dense_cfg = quick_config();
        let mut sampled_cfg = quick_config();
        sampled_cfg.sampled_softmax = Some(SampledSoftmax::defaults(8));
        let run = |cfg: RunConfig| {
            Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(2), cfg).run(&ds)
        };
        let dense = run(dense_cfg);
        let sampled = run(sampled_cfg);
        // Same batch counts, smaller per-epoch kernels: with the per-sync
        // LSH rebuild charged on top the gap narrows at this tiny shape,
        // but dense must still not be cheaper.
        let d = dense.records.last().unwrap().sim_time;
        let s = sampled.records.last().unwrap().sim_time;
        assert!(
            s < d * 1.5,
            "sampled charging out of range: {s} vs dense {d}"
        );
    }

    /// Tentpole gate: a sparse-delta-merge run produces the *same bits* as
    /// the dense-merge run — same final model, same per-merge losses and
    /// accuracies — while charging strictly less simulated merge traffic.
    /// Clock resync at each merge makes the trajectory independent of the
    /// merge schedule's duration, so only `sim_time` may differ.
    #[test]
    fn sparse_merge_run_is_bit_identical_to_dense_run() {
        let ds = dataset();
        let mut dense_cfg = quick_config();
        dense_cfg.sampled_softmax = Some(SampledSoftmax::defaults(12));
        // The tiny 40-class space makes unions dense; disable the fallback
        // so the sparse schedule genuinely runs.
        dense_cfg.sparse_max_density = 1.0;
        let mut sparse_cfg = dense_cfg.clone();
        sparse_cfg.sparse_merge = true;
        let run = |cfg: RunConfig| {
            Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(2), cfg).run(&ds)
        };
        let dense = run(dense_cfg);
        let sparse = run(sparse_cfg);
        assert_eq!(dense.final_model, sparse.final_model);
        assert_eq!(
            dense
                .records
                .iter()
                .map(|r| (
                    r.mean_loss.to_bits(),
                    r.accuracy.to_bits(),
                    r.updates.clone()
                ))
                .collect::<Vec<_>>(),
            sparse
                .records
                .iter()
                .map(|r| (
                    r.mean_loss.to_bits(),
                    r.accuracy.to_bits(),
                    r.updates.clone()
                ))
                .collect::<Vec<_>>()
        );
        assert!(dense.sparse_merge.is_none());
        let stats = sparse.sparse_merge.expect("sparse run must report stats");
        assert_eq!(stats.merges, 4);
        assert_eq!(stats.fallbacks, 0);
        assert!(
            stats.sparse_bytes < stats.dense_bytes,
            "sparse {} !< dense {}",
            stats.sparse_bytes,
            stats.dense_bytes
        );
    }

    /// With the density threshold at zero every merge falls back: timing
    /// (and thus `sim_time`) matches the dense run exactly, bits included.
    #[test]
    fn sparse_merge_fallback_reproduces_dense_timing() {
        let ds = dataset();
        let mut dense_cfg = quick_config();
        dense_cfg.sampled_softmax = Some(SampledSoftmax::defaults(12));
        let mut sparse_cfg = dense_cfg.clone();
        sparse_cfg.sparse_merge = true;
        sparse_cfg.sparse_max_density = 0.0;
        let run = |cfg: RunConfig| {
            Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(2), cfg).run(&ds)
        };
        let dense = run(dense_cfg);
        let sparse = run(sparse_cfg);
        assert_eq!(dense.final_model, sparse.final_model);
        assert_eq!(
            dense
                .records
                .iter()
                .map(|r| r.sim_time.to_bits())
                .collect::<Vec<_>>(),
            sparse
                .records
                .iter()
                .map(|r| r.sim_time.to_bits())
                .collect::<Vec<_>>()
        );
        let stats = sparse.sparse_merge.unwrap();
        assert_eq!(stats.fallbacks, stats.merges);
        assert_eq!(stats.sparse_bytes, stats.dense_bytes);
    }

    /// Sparse merge is a no-op request outside the sampled path or under
    /// Crossbow: the run silently stays dense and reports no stats.
    #[test]
    fn sparse_merge_gates_off_dense_softmax_and_crossbow() {
        let ds = dataset();
        let mut cfg = quick_config();
        cfg.sparse_merge = true;
        cfg.mega_batch_limit = Some(1);
        let dense_softmax = Trainer::new(
            algorithms::adaptive_sgd(),
            heterogeneous_server(2),
            cfg.clone(),
        )
        .run(&ds);
        assert!(dense_softmax.sparse_merge.is_none());
        cfg.sampled_softmax = Some(SampledSoftmax::defaults(12));
        let crossbow =
            Trainer::new(algorithms::crossbow_sma(), heterogeneous_server(2), cfg).run(&ds);
        assert!(crossbow.sparse_merge.is_none());
    }

    #[test]
    fn batch_sample_seed_depends_on_ids_not_order_of_dispatch() {
        let a = batch_sample_seed(&[3, 1, 4], 7);
        assert_eq!(a, batch_sample_seed(&[3, 1, 4], 7));
        assert_ne!(a, batch_sample_seed(&[1, 3, 4], 7));
        assert_ne!(a, batch_sample_seed(&[3, 1, 4], 8));
        assert_ne!(a, batch_sample_seed(&[3, 1], 7));
    }

    #[test]
    fn trace_capture_contains_batches_and_merges() {
        let ds = dataset();
        let mut config = quick_config();
        config.trace = true;
        config.mega_batch_limit = Some(1);
        let result =
            Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(2), config).run(&ds);
        assert!(result.trace.contains("batch 0"));
        assert!(result.trace.contains("merge"));
    }

    #[test]
    fn accuracy_improves_over_training() {
        let ds = dataset();
        let mut config = quick_config();
        config.mega_batch_limit = Some(12);
        config.base_lr = 0.25;
        let result =
            Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(2), config).run(&ds);
        let first = result.records.first().unwrap().accuracy;
        let best = result.best_accuracy();
        assert!(
            best > first + 0.05,
            "no learning: first {first}, best {best}"
        );
    }

    #[test]
    fn scaling_schedule_backs_off_but_training_still_works() {
        let ds = dataset();
        let mut config = quick_config();
        config.mega_batch_limit = Some(10);
        config.scaling_schedule = Some((0.02, 8));
        let result =
            Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(2), config).run(&ds);
        assert_eq!(result.records.len(), 10);
    }

    #[test]
    fn speed_event_rebalances_batch_sizes() {
        // GPU 1 throttles hard at mega-batch 3: afterwards the scaler should
        // push its batch size well below GPU 0's.
        let ds = dataset();
        let mut config = quick_config();
        config.mega_batch_limit = Some(12);
        config.speed_events = vec![(3, 1, 0.3)];
        let result =
            Trainer::new(algorithms::adaptive_sgd(), homogeneous_server(2), config).run(&ds);
        let before = &result.records[2].batch_sizes;
        let after = result.records.last().unwrap();
        let gap_before = (before[0] - before[1]).abs();
        let gap_after = after.batch_sizes[0] - after.batch_sizes[1];
        assert!(
            gap_after > gap_before + 4.0,
            "throttling should widen the batch-size gap: before {before:?}, after {:?}",
            after.batch_sizes
        );
        // And the throttled GPU runs fewer batches despite the rebalancing
        // being underway.
        assert!(after.updates[0] >= after.updates[1]);
    }

    #[test]
    #[should_panic(expected = "time limit or a mega-batch limit")]
    fn missing_limits_panic() {
        let _ = Trainer::new(
            algorithms::adaptive_sgd(),
            homogeneous_server(1),
            RunConfig::paper_defaults(32, 2),
        );
    }
}
