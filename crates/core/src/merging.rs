//! Algorithm 2 (Normalized Model Merging) and the global-model update.

use crate::hyper::GpuHyper;

/// Parameters of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeParams {
    /// Perturbation threshold `pert_thr` on the L2-norm-per-parameter of
    /// every replica (paper default 0.1).
    pub pert_thr: f64,
    /// Perturbation factor `δ` (paper default 0.1).
    pub delta: f64,
    /// Momentum `γ` of the global-model update (paper default 0.9).
    pub gamma: f64,
    /// Weight normalization when update counts differ (Algorithm 2 uses
    /// [`Normalization::UpdateCount`]).
    pub normalization: Normalization,
}

impl Default for MergeParams {
    fn default() -> Self {
        MergeParams {
            pert_thr: 0.1,
            delta: 0.1,
            gamma: 0.9,
            normalization: Normalization::UpdateCount,
        }
    }
}

/// How weights are normalized when update counts differ across replicas.
///
/// Algorithm 2 normalizes by update count alone; the paper notes that "an
/// alternative for later stages is to normalize based on the product between
/// the number of updates and the batch size" (§III-B) — kept here as an
/// ablation/extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// Update count (Algorithm 2 as published).
    #[default]
    UpdateCount,
    /// `u_i · b_i` — favors replicas with many updates *and* accurate
    /// (large-batch) gradients.
    UpdateTimesBatch,
}

/// The outcome of the weight computation: the merge weights and which paths
/// of Algorithm 2 fired (recorded for Fig. 6b).
#[derive(Debug, Clone, PartialEq)]
pub struct MergeDecision {
    /// Per-GPU merge weights `α_i` (normalized before perturbation).
    pub weights: Vec<f64>,
    /// Whether weights were normalized by update counts (`true`) or batch
    /// sizes (`false`, the equal-update-count case).
    pub by_updates: bool,
    /// Whether the perturbation branch fired (all replicas well-regularized).
    pub perturbed: bool,
}

/// **Algorithm 2, lines 1–7** — computes the normalized (and possibly
/// perturbed) merge weights.
///
/// * equal update counts everywhere → normalize by batch size (larger
///   batches produce more accurate gradients);
/// * otherwise → normalize by update count (prioritize replicas that are
///   further along the optimization);
/// * when every replica's L2-norm-per-parameter is below `pert_thr`, boost
///   the most-updated replica by `(1+δ)` and damp the least-updated by
///   `(1−δ)` — deliberately denormalizing, which is safe only because all
///   replicas are well-regularized.
pub fn compute_merge_weights(
    gpus: &[GpuHyper],
    norms_per_param: &[f64],
    params: &MergeParams,
) -> MergeDecision {
    let normalization = params.normalization;
    assert!(!gpus.is_empty(), "no replicas to merge");
    assert_eq!(gpus.len(), norms_per_param.len(), "norms length mismatch");
    let n = gpus.len();
    let all_equal = gpus.windows(2).all(|w| w[0].updates == w[1].updates);
    let mut weights: Vec<f64> = if all_equal {
        let total: f64 = gpus.iter().map(|g| g.batch_size).sum();
        gpus.iter().map(|g| g.batch_size / total).collect()
    } else {
        let score = |g: &GpuHyper| -> f64 {
            match normalization {
                Normalization::UpdateCount => g.updates as f64,
                Normalization::UpdateTimesBatch => g.updates as f64 * g.batch_size,
            }
        };
        let total: f64 = gpus.iter().map(score).sum();
        gpus.iter().map(|g| score(g) / total).collect()
    };

    // Perturbation is only meaningful with at least two distinct replicas.
    let well_regularized = norms_per_param.iter().all(|&nm| nm < params.pert_thr);
    let perturbed = well_regularized && n >= 2;
    if perturbed {
        let r = (0..n).max_by_key(|&i| gpus[i].updates).expect("non-empty");
        let s = (0..n).min_by_key(|&i| gpus[i].updates).expect("non-empty");
        weights[r] *= 1.0 + params.delta;
        weights[s] *= 1.0 - params.delta;
    }
    MergeDecision {
        weights,
        by_updates: !all_equal,
        perturbed,
    }
}

/// **Algorithm 2, lines 8–9** — the global-model update with momentum:
/// `w' = merged + γ·(w − w_prev)`, then `w_prev ← w`, `w ← w'`.
///
/// `merged` must already hold `Σ α_i·w_i` (the all-reduce output); `global`
/// and `prev_global` are updated in place.
pub fn apply_global_update(
    merged: &[f32],
    global: &mut [f32],
    prev_global: &mut [f32],
    gamma: f64,
) {
    assert_eq!(merged.len(), global.len(), "merged/global length");
    assert_eq!(merged.len(), prev_global.len(), "merged/prev length");
    // One fused pool-parallel sweep; element-wise, so partitioning cannot
    // change the bits.
    asgd_tensor::parallel::par_momentum_update(
        merged,
        global,
        prev_global,
        gamma as f32,
        MIN_PAR_GLOBAL,
    );
}

/// [`apply_global_update`] over a precision-tagged merged buffer: the f32
/// variant is the exact pre-existing path; the bf16 variant widens each
/// merged element exactly and runs the same momentum formula in f32 (the
/// global and momentum memory always stay f32 — only *storage* narrows).
pub fn apply_global_update_flat(
    merged: &asgd_tensor::FlatVec,
    global: &mut [f32],
    prev_global: &mut [f32],
    gamma: f64,
) {
    use asgd_tensor::FlatVec;
    match merged {
        FlatVec::F32(m) => apply_global_update(m, global, prev_global, gamma),
        FlatVec::Bf16(m) => {
            assert_eq!(m.len(), global.len(), "merged/global length");
            assert_eq!(m.len(), prev_global.len(), "merged/prev length");
            asgd_tensor::parallel::par_momentum_update_bf16(
                m,
                global,
                prev_global,
                gamma as f32,
                MIN_PAR_GLOBAL,
            );
        }
    }
}

/// Global updates shorter than this stay serial (same rationale as the
/// collective's reduction threshold).
const MIN_PAR_GLOBAL: usize = 1 << 14;

/// Fills every redistribution buffer from the f32 global model, taking the
/// rounding contract's single round point **once**: the first bf16 buffer
/// is narrowed (one round-to-nearest-even per element) and every later bf16
/// buffer copies its bits verbatim. Narrowing is a pure per-element
/// function of the f32 input, so this is bit-identical to narrowing each
/// buffer independently — but a u16 memcpy replaces the repeated
/// conversion sweeps.
///
/// # Panics
/// Panics when a buffer's length does not match the global model's.
pub fn redistribute_global(global: &[f32], bufs: &mut [asgd_tensor::FlatVec]) {
    use asgd_tensor::FlatVec;
    let mut first_bf16: Option<usize> = None;
    for i in 0..bufs.len() {
        match first_bf16 {
            Some(j) if matches!(bufs[i], FlatVec::Bf16(_)) => {
                let (head, tail) = bufs.split_at_mut(i);
                if let (FlatVec::Bf16(src), FlatVec::Bf16(dst)) = (&head[j], &mut tail[0]) {
                    assert_eq!(dst.len(), src.len(), "redistribute buffer length");
                    dst.copy_from_slice(src);
                }
            }
            _ => match &mut bufs[i] {
                FlatVec::F32(v) => asgd_tensor::parallel::par_copy(global, v, MIN_PAR_GLOBAL),
                FlatVec::Bf16(v) => {
                    asgd_tensor::parallel::par_narrow(global, v, MIN_PAR_GLOBAL);
                    first_bf16 = Some(i);
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu(b: f64, u: u64) -> GpuHyper {
        GpuHyper {
            batch_size: b,
            lr: 0.1,
            updates: u,
        }
    }

    #[test]
    fn equal_updates_normalize_by_batch_size() {
        let gpus = vec![gpu(600.0, 4), gpu(200.0, 4), gpu(200.0, 4)];
        let d = compute_merge_weights(&gpus, &[1.0, 1.0, 1.0], &MergeParams::default());
        assert!(!d.by_updates);
        assert!(!d.perturbed, "norms 1.0 ≥ pert_thr");
        assert!((d.weights[0] - 0.6).abs() < 1e-12);
        assert!((d.weights[1] - 0.2).abs() < 1e-12);
        let sum: f64 = d.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unequal_updates_normalize_by_update_count() {
        let gpus = vec![gpu(512.0, 6), gpu(512.0, 2)];
        let d = compute_merge_weights(&gpus, &[0.5, 0.5], &MergeParams::default());
        assert!(d.by_updates);
        assert!((d.weights[0] - 0.75).abs() < 1e-12);
        assert!((d.weights[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn perturbation_fires_only_when_all_replicas_regularized() {
        let gpus = vec![gpu(512.0, 6), gpu(512.0, 2)];
        let p = MergeParams::default();
        // One replica above the threshold blocks perturbation.
        let d = compute_merge_weights(&gpus, &[0.05, 0.2], &p);
        assert!(!d.perturbed);
        // All below: fires, boosting the most-updated replica.
        let d = compute_merge_weights(&gpus, &[0.05, 0.02], &p);
        assert!(d.perturbed);
        assert!((d.weights[0] - 0.75 * 1.1).abs() < 1e-12);
        assert!((d.weights[1] - 0.25 * 0.9).abs() < 1e-12);
        // Denormalization is real: the sum exceeds 1 here.
        let sum: f64 = d.weights.iter().sum();
        assert!(sum > 1.0);
    }

    #[test]
    fn product_normalization_weighs_updates_times_batch() {
        let gpus = vec![gpu(600.0, 4), gpu(200.0, 2)];
        let params = MergeParams {
            normalization: Normalization::UpdateTimesBatch,
            ..MergeParams::default()
        };
        let d = compute_merge_weights(&gpus, &[1.0, 1.0], &params);
        // scores 2400 vs 400 -> weights 6/7, 1/7.
        assert!((d.weights[0] - 6.0 / 7.0).abs() < 1e-12);
        assert!((d.weights[1] - 1.0 / 7.0).abs() < 1e-12);
        assert!(d.by_updates);
    }

    #[test]
    fn product_normalization_irrelevant_with_equal_updates() {
        // Equal update counts take the batch-size branch in both modes.
        let gpus = vec![gpu(600.0, 4), gpu(200.0, 4)];
        let a = compute_merge_weights(&gpus, &[1.0, 1.0], &MergeParams::default());
        let params = MergeParams {
            normalization: Normalization::UpdateTimesBatch,
            ..MergeParams::default()
        };
        let b = compute_merge_weights(&gpus, &[1.0, 1.0], &params);
        assert_eq!(a, b);
    }

    #[test]
    fn perturbation_skipped_for_single_replica() {
        let gpus = vec![gpu(512.0, 3)];
        let d = compute_merge_weights(&gpus, &[0.01], &MergeParams::default());
        assert!(!d.perturbed);
        assert_eq!(d.weights, vec![1.0]);
    }

    #[test]
    fn momentum_update_matches_formula() {
        let merged = vec![1.0f32, 2.0];
        let mut global = vec![3.0f32, 1.0];
        let mut prev = vec![2.0f32, 2.0];
        apply_global_update(&merged, &mut global, &mut prev, 0.9);
        // w' = merged + 0.9(w - wp) = [1 + .9, 2 - .9]
        assert_eq!(global, vec![1.9, 1.1]);
        assert_eq!(prev, vec![3.0, 1.0]);
    }

    #[test]
    fn zero_gamma_is_plain_assignment() {
        let merged = vec![5.0f32];
        let mut global = vec![1.0f32];
        let mut prev = vec![0.0f32];
        apply_global_update(&merged, &mut global, &mut prev, 0.0);
        assert_eq!(global, vec![5.0]);
    }

    #[test]
    #[should_panic(expected = "no replicas")]
    fn empty_merge_panics() {
        compute_merge_weights(&[], &[], &MergeParams::default());
    }

    #[test]
    fn flat_update_f32_matches_slice_path_exactly() {
        let merged = vec![1.0f32, 2.0, -0.5];
        let mut g1 = vec![3.0f32, 1.0, 0.25];
        let mut p1 = vec![2.0f32, 2.0, 0.125];
        let mut g2 = g1.clone();
        let mut p2 = p1.clone();
        apply_global_update(&merged, &mut g1, &mut p1, 0.9);
        apply_global_update_flat(&asgd_tensor::FlatVec::F32(merged), &mut g2, &mut p2, 0.9);
        assert_eq!(g1, g2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn flat_update_bf16_widens_then_runs_the_same_formula() {
        use asgd_tensor::bf16;
        let merged_f32 = [1.5f32, -2.25, 0.875];
        let merged: Vec<u16> = merged_f32.iter().map(|&x| bf16::narrow(x)).collect();
        let mut global = vec![3.0f32, 1.0, 0.5];
        let mut prev = vec![2.0f32, 2.0, 0.25];
        let mut want_g = global.clone();
        let mut want_p = prev.clone();
        // Reference: widen exactly, then the f32 formula.
        let widened: Vec<f32> = merged.iter().map(|&b| bf16::widen(b)).collect();
        apply_global_update(&widened, &mut want_g, &mut want_p, 0.9);
        apply_global_update_flat(
            &asgd_tensor::FlatVec::Bf16(merged),
            &mut global,
            &mut prev,
            0.9,
        );
        assert_eq!(global, want_g);
        assert_eq!(prev, want_p);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn unperturbed_weights_sum_to_one(
            batches in proptest::collection::vec(1.0f64..5000.0, 1..8),
            updates in proptest::collection::vec(1u64..100, 1..8),
        ) {
            let n = batches.len().min(updates.len());
            let gpus: Vec<GpuHyper> = (0..n)
                .map(|i| GpuHyper { batch_size: batches[i], lr: 0.1, updates: updates[i] })
                .collect();
            // Norms above threshold: no perturbation.
            let norms = vec![1.0; n];
            let d = compute_merge_weights(&gpus, &norms, &MergeParams::default());
            let sum: f64 = d.weights.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(d.weights.iter().all(|&w| w >= 0.0));
        }

        #[test]
        fn perturbed_sum_bounded_by_delta(
            updates in proptest::collection::vec(1u64..100, 2..8),
        ) {
            let n = updates.len();
            let gpus: Vec<GpuHyper> = updates
                .iter()
                .map(|&u| GpuHyper { batch_size: 256.0, lr: 0.1, updates: u })
                .collect();
            let norms = vec![0.01; n];
            let p = MergeParams::default();
            let d = compute_merge_weights(&gpus, &norms, &p);
            let sum: f64 = d.weights.iter().sum();
            // |sum - 1| ≤ δ·(α_r + α_s) ≤ δ.
            prop_assert!((sum - 1.0).abs() <= p.delta + 1e-9, "sum {sum}");
        }

        #[test]
        fn momentum_update_is_linear(
            merged in proptest::collection::vec(-5.0f32..5.0, 1..32),
            w in proptest::collection::vec(-5.0f32..5.0, 1..32),
            wp in proptest::collection::vec(-5.0f32..5.0, 1..32),
        ) {
            let n = merged.len().min(w.len()).min(wp.len());
            let merged = &merged[..n];
            let mut global = w[..n].to_vec();
            let mut prev = wp[..n].to_vec();
            let w0 = global.clone();
            apply_global_update(merged, &mut global, &mut prev, 0.9);
            for i in 0..n {
                let want = merged[i] + 0.9 * (w0[i] - wp[i]);
                prop_assert!((global[i] - want).abs() < 1e-5);
                prop_assert_eq!(prev[i], w0[i]);
            }
        }
    }
}
