//! Per-GPU hyperparameter state and Algorithm 1 (Batch Size Scaling).

/// The per-GPU state Algorithm 1 reads and writes: batch size, learning
/// rate, and the number of model-replica updates in the last mega-batch.
///
/// The batch size is kept as `f64` so fractional scaling deltas accumulate
/// exactly; it is rounded only when a batch is actually cut from the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuHyper {
    /// Current batch size `b_i`.
    pub batch_size: f64,
    /// Current learning rate `lr_i`.
    pub lr: f64,
    /// Model replica updates `u_i` performed in the last mega-batch.
    pub updates: u64,
}

impl GpuHyper {
    /// Initial state: `b_i = b_max` with the base learning rate (§V-A: "the
    /// initial batch size – set to b_max – is chosen such that the GPU
    /// memory and utilization are maximized").
    pub fn initial(b_max: usize, base_lr: f64) -> Self {
        Self {
            batch_size: b_max as f64,
            lr: base_lr,
            updates: 0,
        }
    }

    /// The integral batch size used when cutting a batch.
    pub fn rounded_batch(&self) -> usize {
        self.batch_size.round().max(1.0) as usize
    }
}

/// Parameters of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingParams {
    /// Minimum batch size `b_min` (paper default: `b_max / 8`).
    pub b_min: f64,
    /// Maximum batch size `b_max` (memory-bound).
    pub b_max: f64,
    /// Linear update coefficient `β` (paper default: `b_min / 2`).
    pub beta: f64,
}

impl ScalingParams {
    /// The paper's defaults derived from `b_max` (§V-A).
    pub fn paper_defaults(b_max: usize) -> Self {
        let b_max = b_max as f64;
        let b_min = b_max / 8.0;
        ScalingParams {
            b_min,
            b_max,
            beta: b_min / 2.0,
        }
    }
}

/// The batch-size update function. The paper reports experimenting with
/// several functions before settling on the linear rule of Algorithm 1;
/// the multiplicative variant is kept as an ablation target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScalingRule {
    /// `b_i ← b_i ± β·|u_i − µ̃|` (Algorithm 1 as published).
    #[default]
    Linear,
    /// `b_i ← b_i · (u_i / µ̃)` — proportional correction. Converges in one
    /// step under stable speeds but over-reacts to jitter, which is why the
    /// paper rejected it.
    Multiplicative,
}

/// **Algorithm 1 — Batch Size Scaling.**
///
/// Moves every GPU's batch size linearly toward the point where all GPUs
/// perform the same number of model updates: GPUs that updated *more* than
/// the average (faster GPUs) get a batch-size increase of `β·(u_i − µ̃)`,
/// slower ones a symmetric decrease, both gated by the `[b_min, b_max]`
/// clamps that guarantee minimum utilization and bound replica staleness.
/// Learning rates follow the linear scaling rule: `lr_i` is multiplied by
/// the same factor as `b_i`.
///
/// Returns the average update count `µ̃` (useful for logging).
pub fn scale_batch_sizes(gpus: &mut [GpuHyper], params: &ScalingParams) -> f64 {
    scale_batch_sizes_with(gpus, params, ScalingRule::Linear)
}

/// [`scale_batch_sizes`] with an explicit update rule (ablation hook).
pub fn scale_batch_sizes_with(
    gpus: &mut [GpuHyper],
    params: &ScalingParams,
    rule: ScalingRule,
) -> f64 {
    assert!(!gpus.is_empty(), "no GPUs to scale");
    let mu = gpus.iter().map(|g| g.updates as f64).sum::<f64>() / gpus.len() as f64;
    for g in gpus.iter_mut() {
        let u = g.updates as f64;
        let candidate = match rule {
            ScalingRule::Linear => {
                if u > mu {
                    g.batch_size + params.beta * (u - mu)
                } else if u < mu {
                    g.batch_size - params.beta * (mu - u)
                } else {
                    continue;
                }
            }
            ScalingRule::Multiplicative => {
                if u == mu || mu == 0.0 {
                    continue;
                }
                g.batch_size * (u / mu)
            }
        };
        // Algorithm 1's clamp semantics: an update that would leave
        // [b_min, b_max] is skipped outright, not truncated.
        let within = if u > mu {
            candidate <= params.b_max
        } else {
            candidate >= params.b_min
        };
        if within {
            g.lr *= candidate / g.batch_size;
            g.batch_size = candidate;
        }
    }
    mu
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ScalingParams {
        ScalingParams::paper_defaults(1024)
    }

    fn gpu(b: f64, lr: f64, u: u64) -> GpuHyper {
        GpuHyper {
            batch_size: b,
            lr,
            updates: u,
        }
    }

    #[test]
    fn paper_defaults_derivation() {
        let p = params();
        assert_eq!(p.b_max, 1024.0);
        assert_eq!(p.b_min, 128.0);
        assert_eq!(p.beta, 64.0);
    }

    #[test]
    fn faster_gpu_gets_larger_batch_slower_smaller() {
        // u = [12, 8] -> µ̃ = 10. GPU0 grows by β·2, GPU1 shrinks by β·2.
        let mut gpus = vec![gpu(512.0, 0.1, 12), gpu(512.0, 0.1, 8)];
        let mu = scale_batch_sizes(&mut gpus, &params());
        assert_eq!(mu, 10.0);
        assert_eq!(gpus[0].batch_size, 512.0 + 64.0 * 2.0);
        assert_eq!(gpus[1].batch_size, 512.0 - 64.0 * 2.0);
    }

    #[test]
    fn learning_rate_follows_linear_scaling_rule() {
        let mut gpus = vec![gpu(512.0, 0.1, 12), gpu(512.0, 0.1, 8)];
        scale_batch_sizes(&mut gpus, &params());
        assert!((gpus[0].lr - 0.1 * (640.0 / 512.0)).abs() < 1e-12);
        assert!((gpus[1].lr - 0.1 * (384.0 / 512.0)).abs() < 1e-12);
    }

    #[test]
    fn equal_updates_change_nothing() {
        let mut gpus = vec![gpu(700.0, 0.2, 5), gpu(300.0, 0.05, 5)];
        let before = gpus.clone();
        scale_batch_sizes(&mut gpus, &params());
        assert_eq!(gpus, before);
    }

    #[test]
    fn b_max_clamp_blocks_growth_entirely() {
        // Per Algorithm 1, an update that would exceed b_max is skipped
        // (batch size AND lr stay unchanged), not truncated.
        let mut gpus = vec![gpu(1000.0, 0.1, 20), gpu(1000.0, 0.1, 0)];
        scale_batch_sizes(&mut gpus, &params());
        assert_eq!(gpus[0].batch_size, 1000.0);
        assert_eq!(gpus[0].lr, 0.1);
        // The slow GPU shrink (1000 - 64·10 = 360 ≥ 128) proceeds.
        assert_eq!(gpus[1].batch_size, 360.0);
    }

    #[test]
    fn b_min_clamp_blocks_shrink_entirely() {
        let mut gpus = vec![gpu(150.0, 0.1, 0), gpu(150.0, 0.1, 20)];
        scale_batch_sizes(&mut gpus, &params());
        // 150 - 64·10 < 128: blocked.
        assert_eq!(gpus[0].batch_size, 150.0);
        assert_eq!(gpus[0].lr, 0.1);
    }

    #[test]
    fn converges_to_steady_state_under_static_speeds() {
        // Speeds 1.0 vs 0.5: equal update counts need b0 ≈ 2·b1. Iterate the
        // (scaling -> simulated updates) loop and check batch ratio converges.
        let p = ScalingParams::paper_defaults(1024);
        let mut gpus = vec![gpu(1024.0, 0.1, 0), gpu(1024.0, 0.1, 0)];
        let mega = 8192.0;
        for _ in 0..200 {
            // Updates a GPU of speed s performs: time per sample ∝ 1/s, so
            // in a fixed wall-time T it processes s·T samples = s·T/b
            // updates. Both run the full mega-batch duration; samples split
            // proportionally to speed·(time)… approximate the dynamic
            // scheduler: GPU i gets share s_i/Σs of the mega-batch samples.
            let shares = [1.0 / 1.5, 0.5 / 1.5];
            for (g, share) in gpus.iter_mut().zip(shares) {
                g.updates = ((mega * share) / g.batch_size).round() as u64;
            }
            scale_batch_sizes(&mut gpus, &p);
        }
        let ratio = gpus[0].batch_size / gpus[1].batch_size;
        assert!(
            (ratio - 2.0).abs() < 0.35,
            "batch ratio {ratio} should approach speed ratio 2.0"
        );
        // And the resulting update counts are (nearly) equal.
        let u0 = mega * (1.0 / 1.5) / gpus[0].batch_size;
        let u1 = mega * (0.5 / 1.5) / gpus[1].batch_size;
        assert!((u0 - u1).abs() <= 1.0, "updates {u0} vs {u1}");
    }

    #[test]
    #[should_panic(expected = "no GPUs")]
    fn empty_gpu_list_panics() {
        scale_batch_sizes(&mut [], &params());
    }

    #[test]
    fn multiplicative_rule_corrects_in_one_step() {
        // Updates 12 vs 8 (µ̃ = 10): multiplicative jumps straight to the
        // proportional batch sizes.
        let mut gpus = vec![gpu(512.0, 0.1, 12), gpu(512.0, 0.1, 8)];
        scale_batch_sizes_with(&mut gpus, &params(), ScalingRule::Multiplicative);
        assert!((gpus[0].batch_size - 512.0 * 1.2).abs() < 1e-9);
        assert!((gpus[1].batch_size - 512.0 * 0.8).abs() < 1e-9);
    }

    #[test]
    fn multiplicative_respects_clamps() {
        let p = params(); // b_min 128, b_max 1024
        let mut gpus = vec![gpu(1000.0, 0.1, 30), gpu(1000.0, 0.1, 2)];
        scale_batch_sizes_with(&mut gpus, &p, ScalingRule::Multiplicative);
        // 1000·(30/16) > 1024: blocked. 1000·(2/16) = 125 < 128: blocked.
        assert_eq!(gpus[0].batch_size, 1000.0);
        assert_eq!(gpus[1].batch_size, 1000.0);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Batch sizes that start inside `[b_min, b_max]` never leave it —
        /// Algorithm 1's clamps are an invariant, not a best effort.
        #[test]
        fn scaling_preserves_batch_bounds(
            seeds in proptest::collection::vec((0.0f64..1.0, 0u64..500), 1..8),
            rule in prop_oneof![Just(ScalingRule::Linear), Just(ScalingRule::Multiplicative)],
            rounds in 1usize..6,
        ) {
            let p = ScalingParams::paper_defaults(1024);
            let mut gpus: Vec<GpuHyper> = seeds
                .iter()
                .map(|&(frac, u)| GpuHyper {
                    batch_size: p.b_min + frac * (p.b_max - p.b_min),
                    lr: 0.1,
                    updates: u,
                })
                .collect();
            for _ in 0..rounds {
                scale_batch_sizes_with(&mut gpus, &p, rule);
            }
            for g in &gpus {
                prop_assert!(g.batch_size >= p.b_min - 1e-9, "b {} < b_min", g.batch_size);
                prop_assert!(g.batch_size <= p.b_max + 1e-9, "b {} > b_max", g.batch_size);
            }
        }

        /// The linear learning-rate scaling rule holds exactly: `lr_i / b_i`
        /// is invariant under every accepted update (and untouched by skipped
        /// ones), for both update rules.
        #[test]
        fn lr_tracks_batch_size_linearly(
            seeds in proptest::collection::vec((130.0f64..1020.0, 0u64..200), 1..8),
            rule in prop_oneof![Just(ScalingRule::Linear), Just(ScalingRule::Multiplicative)],
        ) {
            let p = ScalingParams::paper_defaults(1024);
            let mut gpus: Vec<GpuHyper> = seeds
                .iter()
                .map(|&(b, u)| GpuHyper { batch_size: b, lr: 0.05, updates: u })
                .collect();
            let before: Vec<f64> = gpus.iter().map(|g| g.lr / g.batch_size).collect();
            scale_batch_sizes_with(&mut gpus, &p, rule);
            for (g, ratio) in gpus.iter().zip(before) {
                prop_assert!(
                    (g.lr / g.batch_size - ratio).abs() < 1e-12 * ratio.abs().max(1.0),
                    "lr/b drifted: {} vs {}", g.lr / g.batch_size, ratio
                );
            }
        }

        /// Equal update counts are Algorithm 1's fixed point: scaling is a
        /// no-op, no matter the batch sizes or the rule.
        #[test]
        fn equal_updates_are_a_fixed_point(
            batches in proptest::collection::vec(130.0f64..1020.0, 1..8),
            u in 0u64..500,
            rule in prop_oneof![Just(ScalingRule::Linear), Just(ScalingRule::Multiplicative)],
        ) {
            let p = ScalingParams::paper_defaults(1024);
            let mut gpus: Vec<GpuHyper> = batches
                .iter()
                .map(|&b| GpuHyper { batch_size: b, lr: 0.1, updates: u })
                .collect();
            let before = gpus.clone();
            let mu = scale_batch_sizes_with(&mut gpus, &p, rule);
            prop_assert_eq!(gpus, before);
            prop_assert!((mu - u as f64).abs() < 1e-9);
        }

        /// The returned µ̃ is the plain mean of the update counts.
        #[test]
        fn returned_mu_is_the_mean(
            updates in proptest::collection::vec(0u64..1000, 1..10),
        ) {
            let p = ScalingParams::paper_defaults(512);
            let mut gpus: Vec<GpuHyper> = updates
                .iter()
                .map(|&u| GpuHyper { batch_size: 256.0, lr: 0.1, updates: u })
                .collect();
            let mu = scale_batch_sizes(&mut gpus, &p);
            let want = updates.iter().sum::<u64>() as f64 / updates.len() as f64;
            prop_assert!((mu - want).abs() < 1e-9);
        }
    }

    #[test]
    fn multiplicative_overreacts_to_jitter_more_than_linear() {
        // One noisy observation (u = [11, 9] around a true 10/10 split):
        // the linear rule moves each batch by β·1 = 64 (12.5%); the
        // multiplicative rule moves them by 10% of a *much larger* base as
        // batches grow, i.e. its step size does not shrink near the fixed
        // point — the over-reaction the paper rejected it for.
        let p = params();
        let mut lin = vec![gpu(900.0, 0.1, 11), gpu(900.0, 0.1, 9)];
        let mut mul = lin.clone();
        scale_batch_sizes_with(&mut lin, &p, ScalingRule::Linear);
        scale_batch_sizes_with(&mut mul, &p, ScalingRule::Multiplicative);
        let lin_move = (lin[1].batch_size - 900.0).abs();
        let mul_move = (mul[1].batch_size - 900.0).abs();
        assert!(mul_move > lin_move, "mul {mul_move} vs lin {lin_move}");
    }
}
