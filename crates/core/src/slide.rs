//! The SLIDE CPU baseline trainer (the paper's fourth comparator, Fig. 5).
//!
//! Small batches, per-sample LSH-sampled softmax updates, periodic hash-table
//! rebuilds, and a CPU cost model ([`asgd_gpusim::DeviceProfile::cpu_server`])
//! whose throughput scales with the Hogwild thread count. Numerically the
//! updates are applied sequentially (Hogwild with a small learning rate is
//! well-approximated by sequential application, and it keeps runs
//! deterministic); *time* is charged as if the threads ran in parallel.
//!
//! This module lives in `asgd-core` (ported from `asgd-slide`) so the LSH
//! crate can stay a leaf shared by the main trainer's sampled-softmax path —
//! which supersedes this per-sample engine for training at scale; what
//! remains here is the baseline's distinct *scenario*: per-sample updates,
//! activation-driven candidate queries, and the CPU cost model.

use crate::{MergeRecord, RunResult};
use asgd_data::{SampleStream, XmlDataset};
use asgd_gpusim::{Device, DeviceId, DeviceProfile, KernelKind};
use asgd_model::{eval, Mlp, MlpConfig};
use asgd_slide::LshIndex;

/// SLIDE hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SlideConfig {
    /// Mini-batch size (SLIDE thrives on small batches / many updates).
    pub batch_size: usize,
    /// LSH tables.
    pub l_tables: usize,
    /// Bits per table.
    pub k_bits: usize,
    /// Rebuild the hash tables every this many samples.
    pub rebuild_every_samples: usize,
    /// Hogwild worker threads (drives the simulated CPU throughput).
    pub threads: usize,
    /// Minimum active-set size: when the LSH buckets return fewer
    /// candidates, random negative classes are padded in (SLIDE's random
    /// sampling fallback). Without negatives, sampled softmax sees only
    /// positive classes and degenerates.
    pub min_active: usize,
    /// Maximum active-set size (caps per-sample cost in dense bucket
    /// regimes).
    pub max_active: usize,
    /// Learning rate.
    pub lr: f64,
    /// Hidden width (must match the GPU runs for comparability).
    pub hidden: usize,
    /// Record accuracy every this many samples (use the GPU mega-batch size
    /// so curves align).
    pub record_every_samples: usize,
    /// Master seed.
    pub seed: u64,
    /// Stop at this simulated time (seconds), if set.
    pub time_limit: Option<f64>,
    /// Stop after this many samples, if set.
    pub sample_limit: Option<u64>,
    /// Evaluation chunk size.
    pub eval_chunk: usize,
}

impl SlideConfig {
    /// Defaults mirroring the SLIDE paper's configuration, scaled down.
    pub fn defaults(record_every_samples: usize) -> Self {
        SlideConfig {
            batch_size: 64,
            l_tables: 8,
            k_bits: 9,
            rebuild_every_samples: 4096,
            threads: 16,
            min_active: 24,
            max_active: 256,
            lr: 0.05,
            hidden: 128,
            record_every_samples,
            seed: 42,
            time_limit: None,
            sample_limit: None,
            eval_chunk: 256,
        }
    }
}

/// The SLIDE training engine.
#[derive(Debug, Clone)]
pub struct SlideTrainer {
    config: SlideConfig,
}

impl SlideTrainer {
    /// Creates a trainer; at least one stop limit must be set.
    pub fn new(config: SlideConfig) -> Self {
        assert!(
            config.time_limit.is_some() || config.sample_limit.is_some(),
            "set a time limit or a sample limit"
        );
        assert!(config.batch_size >= 1);
        Self { config }
    }

    /// Trains on `dataset`; returns records compatible with the GPU runs.
    pub fn run(&self, dataset: &XmlDataset) -> RunResult {
        let cfg = &self.config;
        let mconfig = MlpConfig {
            num_features: dataset.num_features,
            hidden: cfg.hidden,
            num_classes: dataset.num_labels,
        };
        let mut model = Mlp::init(&mconfig, cfg.seed);
        let mut lsh = LshIndex::new(cfg.l_tables, cfg.k_bits, cfg.hidden, cfg.seed ^ 0x51DE);
        lsh.rebuild(model.w2());
        let mut device = Device::new(
            DeviceId(0),
            DeviceProfile::cpu_server("slide-cpu", cfg.threads),
            cfg.seed,
        );
        let mut stream = SampleStream::new(dataset.train.len(), cfg.seed ^ 0xBEEF);
        let mut pad_rng =
            <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(cfg.seed ^ 0x9A9A);
        let mut records = Vec::new();
        let mut since_rebuild = 0usize;
        let mut since_record = 0usize;
        let mut merge_index = 0usize;
        let mut loss_sum = 0.0f64;
        let mut loss_n = 0usize;
        let mut updates_in_interval = 0u64;

        'outer: loop {
            let ids = stream.take(cfg.batch_size);
            let x = dataset.train.features.select_rows(&ids);
            let h = model.hidden_forward(&x);
            let mut active_total = 0usize;
            for (r, &id) in ids.iter().enumerate() {
                let labels = &dataset.train.labels[id];
                if labels.is_empty() {
                    continue;
                }
                let mut active = lsh.query(h.row(r));
                // Cap dense-bucket regimes: keep a random subset of the LSH
                // candidates (true labels are re-added below regardless).
                if active.len() > cfg.max_active {
                    for i in 0..cfg.max_active {
                        let j = i + (rand::Rng::gen_range(&mut pad_rng, 0..active.len() - i));
                        active.swap(i, j);
                    }
                    active.truncate(cfg.max_active);
                }
                // SLIDE always includes the true labels in the active set.
                active.extend_from_slice(labels);
                active.sort_unstable();
                active.dedup();
                // Pad with random negatives up to the minimum active size —
                // sampled softmax needs negative classes to discriminate.
                let want = cfg.min_active.min(dataset.num_labels);
                while active.len() < want {
                    let c = rand::Rng::gen_range(&mut pad_rng, 0..dataset.num_labels) as u32;
                    if let Err(pos) = active.binary_search(&c) {
                        active.insert(pos, c);
                    }
                }
                active_total += active.len();
                let (idx, val) = x.row(r);
                loss_sum +=
                    model.train_sample_sampled(idx, val, h.row(r), labels, &active, cfg.lr as f32);
                loss_n += 1;
            }
            updates_in_interval += 1;

            // Charge the CPU cost: hidden forward on the batch + per-sample
            // sampled output work (forward + backward + update ≈ 6·|active|·h
            // flops — scattered column access, so it runs at the CPU's
            // *sparse* throughput) + touched-feature updates.
            let kinds = [
                KernelKind::SpMm {
                    nnz: x.nnz(),
                    n: cfg.hidden,
                },
                KernelKind::SpMm {
                    nnz: 3 * active_total,
                    n: cfg.hidden,
                },
                // LSH queries: L tables x K hyperplane projections of the
                // hidden activation, per sample.
                KernelKind::Gemm {
                    m: ids.len(),
                    k: cfg.hidden,
                    n: cfg.l_tables * cfg.k_bits,
                },
                KernelKind::Elementwise {
                    elems: x.nnz() * cfg.hidden / 4 + cfg.hidden * ids.len(),
                },
            ];
            device.execute_all(&kinds);

            since_rebuild += ids.len();
            if since_rebuild >= cfg.rebuild_every_samples {
                lsh.rebuild(model.w2());
                // Rebuild streams all neuron vectors through the hash planes.
                device.execute(KernelKind::Reduce {
                    elems: cfg.hidden * dataset.num_labels * cfg.l_tables / 8,
                });
                since_rebuild = 0;
            }

            since_record += ids.len();
            if since_record >= cfg.record_every_samples {
                since_record = 0;
                let accuracy = eval::top1_accuracy(
                    &model,
                    &dataset.test.features,
                    &dataset.test.labels,
                    cfg.eval_chunk,
                );
                records.push(MergeRecord {
                    merge_index,
                    sim_time: device.now().secs(),
                    epochs: stream.epochs(),
                    accuracy,
                    mean_loss: if loss_n == 0 {
                        0.0
                    } else {
                        loss_sum / loss_n as f64
                    },
                    batch_sizes: vec![cfg.batch_size as f64],
                    updates: vec![updates_in_interval],
                    perturbed: false,
                    merge_weights: vec![1.0],
                });
                merge_index += 1;
                loss_sum = 0.0;
                loss_n = 0;
                updates_in_interval = 0;
                if let Some(limit) = cfg.time_limit {
                    if device.now().secs() >= limit {
                        break 'outer;
                    }
                }
            }
            if let Some(limit) = cfg.sample_limit {
                if stream.drawn() >= limit {
                    break 'outer;
                }
            }
        }

        RunResult {
            name: "slide-cpu".into(),
            records,
            final_model: model.to_flat(),
            trace: String::new(),
            final_state: None,
            chaos: Default::default(),
            sparse_merge: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_data::{generate, DatasetSpec};

    fn quick() -> SlideConfig {
        let mut c = SlideConfig::defaults(200);
        c.hidden = 12;
        c.batch_size = 16;
        c.sample_limit = Some(1200);
        c.rebuild_every_samples = 400;
        c.k_bits = 4;
        c.min_active = 12;
        c.eval_chunk = 64;
        c.lr = 0.2;
        c
    }

    #[test]
    fn slide_runs_and_records() {
        let ds = generate(&DatasetSpec::tiny("slide"), 4);
        let result = SlideTrainer::new(quick()).run(&ds);
        assert!(!result.records.is_empty());
        assert_eq!(result.name, "slide-cpu");
        for w in result.records.windows(2) {
            assert!(w[1].sim_time > w[0].sim_time);
        }
    }

    #[test]
    fn slide_learns_on_tiny_data() {
        let ds = generate(&DatasetSpec::tiny("slide2"), 5);
        let mut cfg = quick();
        cfg.sample_limit = Some(6000);
        // Accuracy of the untrained model (same init seed/hidden).
        let mconfig = asgd_model::MlpConfig {
            num_features: ds.num_features,
            hidden: cfg.hidden,
            num_classes: ds.num_labels,
        };
        let untrained = Mlp::init(&mconfig, cfg.seed);
        let base = eval::top1_accuracy(&untrained, &ds.test.features, &ds.test.labels, 64);
        let result = SlideTrainer::new(cfg).run(&ds);
        let best = result.best_accuracy();
        assert!(
            best > base + 0.1,
            "no improvement over untrained: {base} -> {best}"
        );
    }

    #[test]
    fn slide_is_deterministic() {
        let ds = generate(&DatasetSpec::tiny("slide3"), 6);
        let a = SlideTrainer::new(quick()).run(&ds);
        let b = SlideTrainer::new(quick()).run(&ds);
        assert_eq!(a.final_model, b.final_model);
    }

    #[test]
    fn more_threads_faster_simulated_time() {
        let ds = generate(&DatasetSpec::tiny("slide4"), 7);
        let run = |threads: usize| {
            let mut c = quick();
            c.threads = threads;
            SlideTrainer::new(c)
                .run(&ds)
                .records
                .last()
                .unwrap()
                .sim_time
        };
        assert!(run(16) < run(2), "threads should shorten simulated time");
    }

    #[test]
    fn slide_performs_many_more_updates_than_large_batch() {
        // The statistical-efficiency driver: with b = 16 SLIDE does ~12.5x
        // the updates of a b = 200 GPU batch per mega-batch of samples.
        let ds = generate(&DatasetSpec::tiny("slide5"), 8);
        let result = SlideTrainer::new(quick()).run(&ds);
        let updates: u64 = result.records.iter().map(|r| r.updates[0]).sum();
        assert!(updates >= 60, "updates {updates}");
    }

    #[test]
    #[should_panic(expected = "time limit or a sample limit")]
    fn missing_limits_panic() {
        let _ = SlideTrainer::new(SlideConfig::defaults(100));
    }
}
