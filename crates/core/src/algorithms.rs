//! Ready-made [`TrainerSpec`]s for the systems in the paper's evaluation.

use crate::merging::MergeParams;
use crate::trainer::{DispatchPolicy, MergeInterval, MergeRule, ScalingPolicy, TrainerSpec};
use asgd_collective::Algorithm;
use asgd_gpusim::fusion::FusionPolicy;

/// **Adaptive SGD** (the paper's contribution): dynamic scheduling,
/// Algorithm 1 batch size scaling, Algorithm 2 normalized model merging with
/// perturbation and momentum, fused kernels, multi-stream ring all-reduce.
pub fn adaptive_sgd() -> TrainerSpec {
    TrainerSpec {
        name: "adaptive-sgd".into(),
        dispatch: DispatchPolicy::Dynamic,
        scaling: ScalingPolicy::Adaptive,
        merge_interval: MergeInterval::MegaBatch,
        merge_rule: MergeRule::Normalized(MergeParams::default()),
        allreduce: Algorithm::MultiStreamRing { partitions: 4 },
        fusion: FusionPolicy::Fused,
        compute_overhead: 1.0,
    }
}

/// **Elastic SGD** (elastic model averaging / K-step averaging): static
/// partitioning, fixed equal batch sizes, plain averaging once per
/// mega-batch. Same HeteroGPU substrate as Adaptive (fused kernels,
/// multi-stream ring), so the difference isolates the paper's contributions.
pub fn elastic_sgd() -> TrainerSpec {
    TrainerSpec {
        name: "elastic-sgd".into(),
        dispatch: DispatchPolicy::Static,
        scaling: ScalingPolicy::Fixed,
        merge_interval: MergeInterval::MegaBatch,
        merge_rule: MergeRule::Average { gamma: 0.9 },
        allreduce: Algorithm::MultiStreamRing { partitions: 4 },
        fusion: FusionPolicy::Fused,
        compute_overhead: 1.0,
    }
}

/// **TensorFlow (mirrored strategy)**: synchronous gradient aggregation —
/// equal static batches, a merge after *every* batch (averaging the
/// post-update replicas is mathematically the same as applying the averaged
/// gradient), the slower framework epoch execution the paper measures
/// (§V-B), unfused kernels, and a naive mirrored all-reduce.
pub fn tensorflow_sync() -> TrainerSpec {
    TrainerSpec {
        name: "tensorflow".into(),
        dispatch: DispatchPolicy::Static,
        scaling: ScalingPolicy::Fixed,
        merge_interval: MergeInterval::EveryRound,
        merge_rule: MergeRule::Average { gamma: 0.0 },
        allreduce: Algorithm::Naive,
        fusion: FusionPolicy::Unfused,
        compute_overhead: 1.6,
    }
}

/// **CROSSBOW-style synchronous model averaging**: independent learners with
/// equal batches merged after every round, each replica partially pulled
/// toward the central average model. The sensitive central update is what
/// produces the divergence/instability the paper reports for CROSSBOW.
pub fn crossbow_sma() -> TrainerSpec {
    TrainerSpec {
        name: "crossbow".into(),
        dispatch: DispatchPolicy::Static,
        scaling: ScalingPolicy::Fixed,
        merge_interval: MergeInterval::EveryRound,
        merge_rule: MergeRule::Crossbow { pull: 0.5 },
        allreduce: Algorithm::Ring,
        fusion: FusionPolicy::Fused,
        compute_overhead: 1.0,
    }
}

/// All four GPU algorithm specs, in the paper's comparison order.
pub fn all_gpu_algorithms() -> Vec<TrainerSpec> {
    vec![
        adaptive_sgd(),
        elastic_sgd(),
        crossbow_sma(),
        tensorflow_sync(),
    ]
}

/// Ablation: Adaptive SGD without batch size scaling (dynamic dispatch and
/// normalized merging only).
pub fn adaptive_without_scaling() -> TrainerSpec {
    TrainerSpec {
        name: "adaptive-no-scaling".into(),
        scaling: ScalingPolicy::Fixed,
        ..adaptive_sgd()
    }
}

/// Ablation: Adaptive SGD with the *multiplicative* batch-size update — one
/// of the alternatives the paper tried before settling on the linear rule.
pub fn adaptive_multiplicative_scaling() -> TrainerSpec {
    TrainerSpec {
        name: "adaptive-mult-scaling".into(),
        scaling: ScalingPolicy::AdaptiveMultiplicative,
        ..adaptive_sgd()
    }
}

/// Ablation: Adaptive SGD without the perturbation branch of Algorithm 2.
pub fn adaptive_without_perturbation() -> TrainerSpec {
    TrainerSpec {
        name: "adaptive-no-perturbation".into(),
        merge_rule: MergeRule::Normalized(MergeParams {
            // A threshold of 0 can never be satisfied by a non-zero model.
            pert_thr: 0.0,
            ..MergeParams::default()
        }),
        ..adaptive_sgd()
    }
}

/// Extension (§III-B): normalize merge weights by `u_i · b_i` — the
/// "product between the number of updates and the batch size" alternative
/// the paper suggests for later training stages.
pub fn adaptive_product_normalization() -> TrainerSpec {
    TrainerSpec {
        name: "adaptive-product-norm".into(),
        merge_rule: MergeRule::Normalized(MergeParams {
            normalization: crate::merging::Normalization::UpdateTimesBatch,
            ..MergeParams::default()
        }),
        ..adaptive_sgd()
    }
}

/// Ablation: Adaptive SGD with plain (unweighted) merging.
pub fn adaptive_with_plain_average() -> TrainerSpec {
    TrainerSpec {
        name: "adaptive-plain-average".into(),
        merge_rule: MergeRule::Average { gamma: 0.9 },
        ..adaptive_sgd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_spec_matches_paper() {
        let s = adaptive_sgd();
        assert_eq!(s.dispatch, DispatchPolicy::Dynamic);
        assert_eq!(s.scaling, ScalingPolicy::Adaptive);
        assert_eq!(s.merge_interval, MergeInterval::MegaBatch);
        assert!(matches!(s.merge_rule, MergeRule::Normalized(_)));
        assert_eq!(s.compute_overhead, 1.0);
    }

    #[test]
    fn tensorflow_is_slower_and_merge_per_round() {
        let s = tensorflow_sync();
        assert!(s.compute_overhead > 1.0);
        assert_eq!(s.merge_interval, MergeInterval::EveryRound);
        assert_eq!(s.fusion, FusionPolicy::Unfused);
    }

    #[test]
    fn four_gpu_algorithms_have_unique_names() {
        let names: Vec<String> = all_gpu_algorithms().into_iter().map(|s| s.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn ablations_differ_from_adaptive_in_one_axis() {
        let base = adaptive_sgd();
        let no_scale = adaptive_without_scaling();
        assert_eq!(no_scale.dispatch, base.dispatch);
        assert_ne!(no_scale.scaling, base.scaling);
        let no_pert = adaptive_without_perturbation();
        assert_eq!(no_pert.scaling, base.scaling);
        assert_ne!(no_pert.merge_rule, base.merge_rule);
    }
}
