//! Time-to-accuracy and statistical-efficiency recording.

/// One row recorded at a model-merge (or evaluation) point.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeRecord {
    /// 0-based merge index.
    pub merge_index: usize,
    /// Simulated seconds elapsed (max device clock at merge completion;
    /// evaluation time is excluded, matching §V-A).
    pub sim_time: f64,
    /// Fractional passes over the training set so far.
    pub epochs: f64,
    /// Top-1 test accuracy of the global model.
    pub accuracy: f64,
    /// Mean training loss over the merge interval.
    pub mean_loss: f64,
    /// Per-GPU batch sizes *after* this merge's scaling step (Fig. 6a).
    pub batch_sizes: Vec<f64>,
    /// Per-GPU update counts in the interval.
    pub updates: Vec<u64>,
    /// Whether Algorithm 2's perturbation fired (Fig. 6b).
    pub perturbed: bool,
    /// The merge weights used.
    pub merge_weights: Vec<f64>,
}

/// Accumulates [`MergeRecord`]s during a run.
#[derive(Debug, Clone, Default)]
pub struct RunRecorder {
    records: Vec<MergeRecord>,
}

impl RunRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: MergeRecord) {
        self.records.push(record);
    }

    /// All records so far.
    pub fn records(&self) -> &[MergeRecord] {
        &self.records
    }

    /// Consumes the recorder.
    pub fn into_records(self) -> Vec<MergeRecord> {
        self.records
    }
}

/// Accounting of the sparse delta merge path (`ASGD_SPARSE_MERGE=1`):
/// simulated bytes the sparse schedule moved versus what the dense
/// schedule would have moved over the same merges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseMergeStats {
    /// Merges that went through the sparse planner.
    pub merges: u64,
    /// Of those, merges whose union density exceeded the threshold and
    /// fell back to the dense schedule (timing-only — arithmetic is always
    /// dense).
    pub fallbacks: u64,
    /// Simulated bytes moved by the charged (sparse or fallen-back)
    /// schedules.
    pub sparse_bytes: u64,
    /// Simulated bytes the dense schedules would have moved.
    pub dense_bytes: u64,
}

impl SparseMergeStats {
    /// `dense_bytes / sparse_bytes` — the headline traffic reduction.
    pub fn bytes_ratio(&self) -> f64 {
        self.dense_bytes as f64 / (self.sparse_bytes as f64).max(1.0)
    }
}

/// The complete outcome of one training run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Algorithm name (e.g. `"adaptive-sgd"`).
    pub name: String,
    /// Records in merge order.
    pub records: Vec<MergeRecord>,
    /// The final global model, flattened.
    pub final_model: Vec<f32>,
    /// Rendered dispatch trace (empty when tracing was disabled).
    pub trace: String,
    /// Resumable snapshot at the final merge (GPU trainers only; the SLIDE
    /// baseline reports `None`).
    pub final_state: Option<crate::checkpoint::TrainingState>,
    /// Fault-injection outcome accounting (quiet/default when the run had no
    /// [`crate::trainer::RunConfig::fault_plan`]).
    pub chaos: crate::trainer::chaos::ChaosStats,
    /// Sparse-merge accounting (`None` unless the sparse delta merge was
    /// active — [`crate::trainer::RunConfig::sparse_merge`]).
    pub sparse_merge: Option<SparseMergeStats>,
}

impl RunResult {
    /// Highest accuracy reached at any record.
    pub fn best_accuracy(&self) -> f64 {
        self.records.iter().map(|r| r.accuracy).fold(0.0, f64::max)
    }

    /// Earliest simulated time at which `target` accuracy was reached
    /// (`None` if never) — the paper's headline metric.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.accuracy >= target)
            .map(|r| r.sim_time)
    }

    /// Earliest epoch count at which `target` accuracy was reached
    /// (`None` if never) — statistical efficiency (Fig. 5b).
    pub fn epochs_to_accuracy(&self, target: f64) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.accuracy >= target)
            .map(|r| r.epochs)
    }

    /// Fraction of merges in which perturbation fired (Fig. 6b summary).
    pub fn perturbation_frequency(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.perturbed).count() as f64 / self.records.len() as f64
    }

    /// CSV of the `(sim_time, epochs, accuracy, loss)` series — the raw data
    /// of Figures 4 and 5.
    pub fn curve_csv(&self) -> String {
        let mut out = String::from("merge,sim_time,epochs,accuracy,mean_loss\n");
        for r in &self.records {
            out.push_str(&format!(
                "{},{:.6},{:.4},{:.4},{:.5}\n",
                r.merge_index, r.sim_time, r.epochs, r.accuracy, r.mean_loss
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: usize, t: f64, e: f64, acc: f64, pert: bool) -> MergeRecord {
        MergeRecord {
            merge_index: i,
            sim_time: t,
            epochs: e,
            accuracy: acc,
            mean_loss: 1.0 / (i + 1) as f64,
            batch_sizes: vec![256.0],
            updates: vec![10],
            perturbed: pert,
            merge_weights: vec![1.0],
        }
    }

    fn result() -> RunResult {
        RunResult {
            name: "test".into(),
            records: vec![
                record(0, 1.0, 0.5, 0.10, false),
                record(1, 2.0, 1.0, 0.25, true),
                record(2, 3.0, 1.5, 0.22, true),
                record(3, 4.0, 2.0, 0.30, true),
            ],
            final_model: vec![],
            trace: String::new(),
            final_state: None,
            chaos: Default::default(),
            sparse_merge: None,
        }
    }

    #[test]
    fn time_to_accuracy_finds_first_crossing() {
        let r = result();
        assert_eq!(r.time_to_accuracy(0.2), Some(2.0));
        assert_eq!(r.time_to_accuracy(0.3), Some(4.0));
        assert_eq!(r.time_to_accuracy(0.9), None);
    }

    #[test]
    fn epochs_to_accuracy_matches() {
        let r = result();
        assert_eq!(r.epochs_to_accuracy(0.2), Some(1.0));
    }

    #[test]
    fn best_accuracy_is_max_not_last() {
        let mut r = result();
        assert_eq!(r.best_accuracy(), 0.30);
        r.records.push(record(4, 5.0, 2.5, 0.05, false));
        assert_eq!(r.best_accuracy(), 0.30);
    }

    #[test]
    fn perturbation_frequency_counts() {
        let r = result();
        assert_eq!(r.perturbation_frequency(), 0.75);
    }

    #[test]
    fn curve_csv_shape() {
        let csv = result().curve_csv();
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("merge,sim_time"));
    }

    #[test]
    fn empty_result_is_safe() {
        let r = RunResult {
            name: "e".into(),
            records: vec![],
            final_model: vec![],
            trace: String::new(),
            final_state: None,
            chaos: Default::default(),
            sparse_merge: None,
        };
        assert_eq!(r.best_accuracy(), 0.0);
        assert_eq!(r.time_to_accuracy(0.1), None);
        assert_eq!(r.perturbation_frequency(), 0.0);
    }
}
