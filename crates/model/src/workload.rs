//! The kernel sequence one SGD epoch charges to its simulated device.
//!
//! Training math runs for real on the CPU; *time* is simulated by charging
//! the kernels a V100 would have executed. This module is the single source
//! of truth for that mapping, so every algorithm (Adaptive, Elastic,
//! synchronous, CROSSBOW) pays identical costs for identical work.

use crate::mlp::MlpConfig;
use asgd_gpusim::fusion::{epoch_launch_overhead, FusionPolicy, LaunchModel};
use asgd_gpusim::KernelKind;

/// Bytes of a batch in CSR on the wire: values + indices + row pointers.
pub fn batch_bytes(batch_size: usize, batch_nnz: usize) -> usize {
    8 * batch_nnz + 8 * (batch_size + 1)
}

/// Resident device-memory footprint of training one batch, in bytes:
/// the model replica + its dense gradients, the CSR batch, and the dense
/// activations/gradients the forward/backward passes keep on the device
/// (`H`, `dH`, `logits`, `dlogits`).
pub fn training_footprint_bytes(
    config: &MlpConfig,
    batch_size: usize,
    avg_nnz_per_sample: f64,
) -> u64 {
    let model = 4 * config.param_len() as u64;
    let grads = model; // worst case: dense gradient buffers
    let batch = batch_bytes(
        batch_size,
        (batch_size as f64 * avg_nnz_per_sample) as usize,
    ) as u64;
    let activations = 4 * (2 * batch_size * config.hidden) as u64; // H, dH
    let logits = 4 * (2 * batch_size * config.num_classes) as u64; // logits, dlogits
    model + grads + batch + activations + logits
}

/// Derives the paper's `b_max`: the largest batch size whose training
/// footprint fits in `memory_bytes` (§V-A: "the initial batch size — set to
/// b_max — is chosen such that the GPU memory — and utilization — are
/// maximized"). Returns `None` when even a single sample does not fit.
pub fn derive_b_max(
    config: &MlpConfig,
    memory_bytes: u64,
    avg_nnz_per_sample: f64,
) -> Option<usize> {
    if training_footprint_bytes(config, 1, avg_nnz_per_sample) > memory_bytes {
        return None;
    }
    // The footprint is monotone in the batch size: binary search.
    let mut lo = 1usize;
    let mut hi = 1usize;
    while training_footprint_bytes(config, hi * 2, avg_nnz_per_sample) <= memory_bytes {
        hi *= 2;
        if hi >= 1 << 24 {
            break;
        }
    }
    hi *= 2;
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if training_footprint_bytes(config, mid, avg_nnz_per_sample) <= memory_bytes {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(lo)
}

/// The kernels of one training epoch (one batch: forward, backward, update),
/// in issue order.
///
/// `nnz` is the actual non-zero count of the batch — the data-dependent
/// term that differentiates otherwise identical batches (§I).
pub fn epoch_kernels(config: &MlpConfig, batch_size: usize, nnz: usize) -> Vec<KernelKind> {
    let h = config.hidden;
    let c = config.num_classes;
    let b = batch_size;
    vec![
        // Host → device: the batch itself.
        KernelKind::H2d {
            bytes: batch_bytes(b, nnz),
        },
        // Forward: H = X·W1 (+bias, ReLU), logits = H·W2 (+bias, softmax).
        KernelKind::SpMm { nnz, n: h },
        KernelKind::Elementwise { elems: b * h },
        KernelKind::Gemm { m: b, k: h, n: c },
        KernelKind::Softmax { rows: b, cols: c },
        // Loss + dlogits.
        KernelKind::Elementwise { elems: b * c },
        // Backward: dW2 = Hᵀ·dlogits, dH = dlogits·W2ᵀ (+ReLU mask),
        // dW1 = Xᵀ·dH.
        KernelKind::Gemm { m: h, k: b, n: c },
        KernelKind::Gemm { m: b, k: c, n: h },
        KernelKind::Elementwise { elems: b * h },
        KernelKind::SpMmTn { nnz, n: h },
        // Update: touched W1 rows + b1 + W2 + b2.
        KernelKind::Elementwise {
            elems: nnz.min(config.num_features) * h + h + h * c + c,
        },
    ]
}

/// The kernels of one *sampled-softmax* training epoch, in issue order —
/// the [`epoch_kernels`] counterpart for the LSH-sampled output path.
///
/// The output-layer work shrinks from `num_classes` to `cand` (the batch's
/// candidate-set size), which is where the full-label-scale speedup comes
/// from; the input layer and hidden activations are unchanged. Two extra
/// charges cover the sampling machinery itself: the per-batch LSH bucket
/// lookups (`cand × tables` signature/bucket touches) and the sparse
/// output-layer update touching only candidate rows.
pub fn sampled_epoch_kernels(
    config: &MlpConfig,
    batch_size: usize,
    nnz: usize,
    cand: usize,
    tables: usize,
) -> Vec<KernelKind> {
    let h = config.hidden;
    let c = cand.min(config.num_classes).max(1);
    let b = batch_size;
    vec![
        // Host → device: the batch itself.
        KernelKind::H2d {
            bytes: batch_bytes(b, nnz),
        },
        // LSH candidate selection: bucket lookups + the canonical-order
        // merge over the candidate pool.
        KernelKind::Elementwise { elems: c * tables },
        // Forward: H = X·W1 (+bias, ReLU), compact logits over the
        // candidate rows (gathered-row GEMM).
        KernelKind::SpMm { nnz, n: h },
        KernelKind::Elementwise { elems: b * h },
        KernelKind::Gemm { m: b, k: h, n: c },
        KernelKind::Softmax { rows: b, cols: c },
        // Loss + dlogits over the candidate set.
        KernelKind::Elementwise { elems: b * c },
        // Backward: compact ∇W2ᵀ = dlogitsᵀ·H, dH through the gathered
        // rows (+ReLU mask), dW1 = Xᵀ·dH.
        KernelKind::Gemm { m: c, k: b, n: h },
        KernelKind::Gemm { m: b, k: c, n: h },
        KernelKind::Elementwise { elems: b * h },
        KernelKind::SpMmTn { nnz, n: h },
        // Update: touched W1 rows + b1 + candidate W2 rows + candidate b2.
        KernelKind::Elementwise {
            elems: nnz.min(config.num_features) * h + h + c * h + c,
        },
    ]
}

/// Rebuilding the LSH tables over every output neuron (a model-sync point
/// cost): `classes × tables` signatures, each a `k_bits × hidden` projection
/// sweep, plus the serial bucket fill.
pub fn lsh_rebuild_kernels(config: &MlpConfig, tables: usize, k_bits: usize) -> Vec<KernelKind> {
    let c = config.num_classes;
    vec![
        KernelKind::Gemm {
            m: c,
            k: config.hidden,
            n: tables * k_bits,
        },
        KernelKind::Elementwise { elems: c * tables },
    ]
}

/// The kernels of one inference micro-batch (transfer in, forward, top-k
/// extraction, results out), in issue order — the serving counterpart of
/// [`epoch_kernels`]. No backward pass, no update: inference is
/// forward-dominated and its result transfer is tiny (`k` class ids per
/// request), so micro-batch cost is driven by the data-dependent `nnz` and
/// the `batch × classes` softmax/top-k scan, exactly the heterogeneity the
/// adaptive dispatcher exploits.
pub fn inference_kernels(
    config: &MlpConfig,
    batch_size: usize,
    nnz: usize,
    k: usize,
) -> Vec<KernelKind> {
    let h = config.hidden;
    let c = config.num_classes;
    let b = batch_size;
    let k_eff = k.min(c).max(1);
    vec![
        // Host → device: the micro-batch itself.
        KernelKind::H2d {
            bytes: batch_bytes(b, nnz),
        },
        // Forward: H = X·W1 (+bias, ReLU), probs = softmax(H·W2 + bias).
        KernelKind::SpMm { nnz, n: h },
        KernelKind::Elementwise { elems: b * h },
        KernelKind::Gemm { m: b, k: h, n: c },
        KernelKind::Softmax { rows: b, cols: c },
        // Per-row top-k over the class distribution.
        KernelKind::TopK {
            rows: b,
            cols: c,
            k: k_eff,
        },
        // Device → host: k class ids per request.
        KernelKind::D2h {
            bytes: 4 * b * k_eff,
        },
    ]
}

/// The kernels of moving a full model replica host↔device (mega-batch entry).
pub fn model_transfer_kernels(config: &MlpConfig, to_device: bool) -> Vec<KernelKind> {
    model_transfer_kernels_sized(config, to_device, 4)
}

/// [`model_transfer_kernels`] for an arbitrary storage width: bf16 replicas
/// (`elem_bytes = 2`) move half the bytes of f32 ones over PCIe.
pub fn model_transfer_kernels_sized(
    config: &MlpConfig,
    to_device: bool,
    elem_bytes: usize,
) -> Vec<KernelKind> {
    let bytes = elem_bytes * config.param_len();
    if to_device {
        vec![KernelKind::H2d { bytes }]
    } else {
        vec![KernelKind::D2h { bytes }]
    }
}

/// Total *launch overhead* adjustment of an epoch under a fusion policy with
/// `concurrent_managers` GPU managers active. The base per-kernel overhead
/// is already inside each kernel's cost; this returns the *extra* overhead
/// (or saving) relative to that baseline, so trainers can add it on top.
pub fn epoch_overhead_delta(
    config: &MlpConfig,
    batch_size: usize,
    nnz: usize,
    policy: FusionPolicy,
    model: &LaunchModel,
    concurrent_managers: usize,
) -> f64 {
    overhead_delta_for(
        &epoch_kernels(config, batch_size, nnz),
        policy,
        model,
        concurrent_managers,
    )
}

/// [`epoch_overhead_delta`] over an explicit kernel list — used by the
/// sampled-softmax path, whose epoch has a different kernel sequence.
pub fn overhead_delta_for(
    kernels: &[KernelKind],
    policy: FusionPolicy,
    model: &LaunchModel,
    concurrent_managers: usize,
) -> f64 {
    let actual = epoch_launch_overhead(kernels, policy, model, concurrent_managers);
    // Baseline already charged: one uncontended launch per compute kernel.
    let baseline: f64 =
        kernels.iter().filter(|k| !k.is_transfer()).count() as f64 * model.base_overhead_s;
    actual - baseline
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MlpConfig {
        MlpConfig {
            num_features: 1000,
            hidden: 128,
            num_classes: 500,
        }
    }

    #[test]
    fn epoch_kernel_list_is_stable() {
        let k = epoch_kernels(&config(), 64, 2000);
        assert_eq!(k.len(), 11);
        assert!(matches!(k[0], KernelKind::H2d { .. }));
        assert!(matches!(k[1], KernelKind::SpMm { nnz: 2000, n: 128 }));
    }

    #[test]
    fn nnz_flows_into_sparse_kernels() {
        let a = epoch_kernels(&config(), 64, 1000);
        let b = epoch_kernels(&config(), 64, 9000);
        let nnz_of = |ks: &[KernelKind]| -> usize {
            ks.iter()
                .filter_map(|k| match k {
                    KernelKind::SpMm { nnz, .. } => Some(*nnz),
                    _ => None,
                })
                .sum()
        };
        assert_eq!(nnz_of(&a), 1000);
        assert_eq!(nnz_of(&b), 9000);
    }

    #[test]
    fn sampled_epoch_shrinks_output_work_to_the_candidate_set() {
        let c = config();
        let dense = epoch_kernels(&c, 64, 2000);
        let sampled = sampled_epoch_kernels(&c, 64, 2000, 40, 8);
        assert_eq!(sampled.len(), 12);
        // Output-layer GEMMs run at candidate width, not class width.
        let gemm_ns = |ks: &[KernelKind]| -> Vec<usize> {
            ks.iter()
                .filter_map(|k| match k {
                    KernelKind::Gemm { m, n, .. } => Some((*m, *n)),
                    _ => None,
                })
                .map(|(_, n)| n)
                .collect()
        };
        assert!(gemm_ns(&dense).contains(&500));
        assert!(!gemm_ns(&sampled).contains(&500));
        assert!(gemm_ns(&sampled).contains(&40));
        // Input-layer sparse kernels are unchanged.
        let spmm_nnz = |ks: &[KernelKind]| -> usize {
            ks.iter()
                .filter_map(|k| match k {
                    KernelKind::SpMm { nnz, .. } | KernelKind::SpMmTn { nnz, .. } => Some(*nnz),
                    _ => None,
                })
                .sum()
        };
        assert_eq!(spmm_nnz(&dense), spmm_nnz(&sampled));
    }

    #[test]
    fn sampled_candidate_count_clamps_to_classes() {
        let ks = sampled_epoch_kernels(&config(), 8, 100, 10_000, 4);
        assert!(ks
            .iter()
            .any(|k| matches!(k, KernelKind::Softmax { rows: 8, cols: 500 })));
    }

    #[test]
    fn lsh_rebuild_scales_with_classes_and_tables() {
        let small = lsh_rebuild_kernels(&config(), 4, 6);
        let big = lsh_rebuild_kernels(&config(), 16, 6);
        let flops = |ks: &[KernelKind]| match ks[0] {
            KernelKind::Gemm { m, k, n } => m * k * n,
            _ => 0,
        };
        assert_eq!(4 * flops(&small), flops(&big));
    }

    #[test]
    fn overhead_delta_for_matches_epoch_overhead_delta() {
        let m = LaunchModel::default_cuda();
        let c = config();
        let via_list = overhead_delta_for(&epoch_kernels(&c, 64, 2000), FusionPolicy::Fused, &m, 2);
        let direct = epoch_overhead_delta(&c, 64, 2000, FusionPolicy::Fused, &m, 2);
        assert_eq!(via_list.to_bits(), direct.to_bits());
    }

    #[test]
    fn inference_kernel_list_is_forward_only() {
        let ks = inference_kernels(&config(), 32, 1500, 5);
        assert_eq!(ks.len(), 7);
        assert!(matches!(ks[0], KernelKind::H2d { .. }));
        assert!(matches!(ks[1], KernelKind::SpMm { nnz: 1500, n: 128 }));
        assert!(matches!(
            ks[5],
            KernelKind::TopK {
                rows: 32,
                cols: 500,
                k: 5
            }
        ));
        assert!(matches!(ks[6], KernelKind::D2h { bytes: 640 }));
        // No backward or update kernels: strictly cheaper than an epoch.
        assert!(ks.len() < epoch_kernels(&config(), 32, 1500).len());
    }

    #[test]
    fn inference_k_is_capped_at_class_count() {
        let ks = inference_kernels(&config(), 8, 100, 10_000);
        assert!(matches!(ks[5], KernelKind::TopK { k: 500, .. }));
    }

    #[test]
    fn transfer_bytes_scale_with_model() {
        let small = model_transfer_kernels(&config(), true);
        let big_config = MlpConfig {
            num_features: 2000,
            ..config()
        };
        let big = model_transfer_kernels(&big_config, true);
        let bytes = |ks: &[KernelKind]| match ks[0] {
            KernelKind::H2d { bytes } => bytes,
            _ => 0,
        };
        assert!(bytes(&big) > bytes(&small));
    }

    #[test]
    fn bf16_transfer_moves_half_the_bytes() {
        let bytes = |ks: &[KernelKind]| match ks[0] {
            KernelKind::H2d { bytes } => bytes,
            _ => 0,
        };
        let f32_bytes = bytes(&model_transfer_kernels_sized(&config(), true, 4));
        let bf16_bytes = bytes(&model_transfer_kernels_sized(&config(), true, 2));
        assert_eq!(f32_bytes, 2 * bf16_bytes);
        assert_eq!(bytes(&model_transfer_kernels(&config(), true)), f32_bytes);
    }

    #[test]
    fn fusion_delta_is_negative_and_contention_delta_positive() {
        let m = LaunchModel::default_cuda();
        // Fused single manager: saves overhead relative to baseline.
        let fused = epoch_overhead_delta(&config(), 64, 2000, FusionPolicy::Fused, &m, 1);
        assert!(fused < 0.0, "fusion should save: {fused}");
        // Unfused with 4 contending managers: pays extra.
        let contended = epoch_overhead_delta(&config(), 64, 2000, FusionPolicy::Unfused, &m, 4);
        assert!(contended > 0.0, "contention should cost: {contended}");
        // Fused contended sits between.
        let fused4 = epoch_overhead_delta(&config(), 64, 2000, FusionPolicy::Fused, &m, 4);
        assert!(fused4 < contended);
    }

    #[test]
    fn footprint_is_monotone_in_batch_size() {
        let c = config();
        let mut prev = 0;
        for b in [1usize, 16, 64, 256, 1024] {
            let f = training_footprint_bytes(&c, b, 76.0);
            assert!(f > prev);
            prev = f;
        }
    }

    #[test]
    fn derived_b_max_fits_and_next_size_does_not() {
        let c = config();
        let mem = 64 << 20; // 64 MB
        let b_max = derive_b_max(&c, mem, 76.0).unwrap();
        assert!(training_footprint_bytes(&c, b_max, 76.0) <= mem);
        assert!(training_footprint_bytes(&c, b_max + 1, 76.0) > mem);
    }

    #[test]
    fn paper_scale_model_on_v100_gives_plausible_b_max() {
        // Full Amazon-670k model: 135909x128 + 128x670091 weights ~ 398 MB.
        let c = MlpConfig {
            num_features: 135_909,
            hidden: 128,
            num_classes: 670_091,
        };
        let b_max = derive_b_max(&c, 16 * (1 << 30), 76.0).unwrap();
        // The logits dominate (2*4*670091 B/sample ≈ 5.4 MB): ~2.8k samples.
        assert!(
            (1_000..5_000).contains(&b_max),
            "b_max {b_max} outside the plausible V100 range"
        );
    }

    #[test]
    fn oversized_model_yields_none() {
        let c = MlpConfig {
            num_features: 1_000_000,
            hidden: 1024,
            num_classes: 1_000_000,
        };
        assert_eq!(derive_b_max(&c, 1 << 20, 76.0), None);
    }

    #[test]
    fn batch_bytes_count_csr_payload() {
        // 10 nnz, 4 rows: 8*10 value+index bytes + 8*5 row pointers.
        assert_eq!(batch_bytes(4, 10), 120);
    }
}
