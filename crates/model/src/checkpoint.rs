//! Binary model checkpointing.
//!
//! Format (little-endian):
//!
//! ```text
//! magic  "ASGD"            4 bytes
//! version u32              4 bytes
//! [v2 only] precision u32  (0 = f32, 1 = bf16)
//! num_features u64 | hidden u64 | num_classes u64
//! params  × param_len      (W₁ ‖ b₁ ‖ W₂ ‖ b₂, the `to_flat` layout;
//!                           f32-le in f32 checkpoints, bf16-le in bf16 ones)
//! ```
//!
//! Version 1 has no precision field and is always f32; [`encode`] still
//! emits it byte-for-byte so existing golden checksums hold. Version 2 adds
//! the precision tag and a bf16 payload option ([`encode_with`]); decoding
//! widens bf16 exactly, so a v2/bf16 round-trip equals one narrowing of the
//! source model (the rounding contract's single round point per store).

use crate::mlp::{Mlp, MlpConfig};
use asgd_tensor::{bf16, Precision};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"ASGD";
const VERSION: u32 = 1;
const VERSION_PRECISION: u32 = 2;

/// Checkpoint decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// Payload shorter than the header claims.
    Truncated,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "truncated checkpoint"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serializes a model to bytes (version-1 f32 layout, unchanged).
pub fn encode(model: &Mlp) -> Bytes {
    encode_with(model, Precision::F32)
}

/// Serializes a model at the requested storage precision. [`Precision::F32`]
/// emits the legacy version-1 layout byte-for-byte; [`Precision::Bf16`]
/// emits version 2 with a half-size payload (one round-to-nearest-even
/// narrowing per weight).
pub fn encode_with(model: &Mlp, precision: Precision) -> Bytes {
    let flat = model.to_flat();
    let mut buf = BytesMut::with_capacity(4 + 8 + 24 + precision.bytes() * flat.len());
    buf.put_slice(MAGIC);
    match precision {
        Precision::F32 => buf.put_u32_le(VERSION),
        Precision::Bf16 => {
            buf.put_u32_le(VERSION_PRECISION);
            buf.put_u32_le(1);
        }
    }
    let c = model.config();
    buf.put_u64_le(c.num_features as u64);
    buf.put_u64_le(c.hidden as u64);
    buf.put_u64_le(c.num_classes as u64);
    match precision {
        Precision::F32 => {
            for v in flat {
                buf.put_f32_le(v);
            }
        }
        Precision::Bf16 => {
            for v in flat {
                buf.put_slice(&bf16::narrow(v).to_le_bytes());
            }
        }
    }
    buf.freeze()
}

/// Deserializes a model.
pub fn decode(mut data: Bytes) -> Result<Mlp, CheckpointError> {
    if data.remaining() < 8 + 24 {
        return Err(CheckpointError::Truncated);
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = data.get_u32_le();
    let precision = match version {
        VERSION => Precision::F32,
        VERSION_PRECISION => {
            if data.remaining() < 4 {
                return Err(CheckpointError::Truncated);
            }
            match data.get_u32_le() {
                0 => Precision::F32,
                1 => Precision::Bf16,
                _ => return Err(CheckpointError::BadVersion(version)),
            }
        }
        other => return Err(CheckpointError::BadVersion(other)),
    };
    if data.remaining() < 24 {
        return Err(CheckpointError::Truncated);
    }
    let config = MlpConfig {
        num_features: data.get_u64_le() as usize,
        hidden: data.get_u64_le() as usize,
        num_classes: data.get_u64_le() as usize,
    };
    let n = config.param_len();
    if data.remaining() < precision.bytes() * n {
        return Err(CheckpointError::Truncated);
    }
    let mut flat = Vec::with_capacity(n);
    match precision {
        Precision::F32 => {
            for _ in 0..n {
                flat.push(data.get_f32_le());
            }
        }
        Precision::Bf16 => {
            let mut half = [0u8; 2];
            for _ in 0..n {
                data.copy_to_slice(&mut half);
                flat.push(bf16::widen(u16::from_le_bytes(half)));
            }
        }
    }
    let mut model = Mlp::zeros(&config);
    model.load_flat(&flat);
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MlpConfig {
        MlpConfig {
            num_features: 12,
            hidden: 5,
            num_classes: 7,
        }
    }

    #[test]
    fn roundtrip_preserves_model_exactly() {
        let model = Mlp::init(&config(), 123);
        let bytes = encode(&model);
        let back = decode(bytes).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn encode_with_f32_matches_legacy_encoding_exactly() {
        let model = Mlp::init(&config(), 99);
        assert_eq!(encode(&model), encode_with(&model, Precision::F32));
    }

    #[test]
    fn bf16_checkpoint_is_one_rounding_and_half_the_payload() {
        let model = Mlp::init(&config(), 123);
        let f32_bytes = encode(&model);
        let bf16_bytes = encode_with(&model, Precision::Bf16);
        let header_v1 = 4 + 4 + 24;
        let header_v2 = 4 + 4 + 4 + 24;
        let n = config().param_len();
        assert_eq!(f32_bytes.len(), header_v1 + 4 * n);
        assert_eq!(bf16_bytes.len(), header_v2 + 2 * n);
        let back = decode(bf16_bytes).unwrap();
        assert_eq!(back, model.quantized(Precision::Bf16));
        // Round-trip of an already-quantized model is exact.
        let again = decode(encode_with(&back, Precision::Bf16)).unwrap();
        assert_eq!(again, back);
    }

    #[test]
    fn rejects_unknown_precision_tag() {
        let model = Mlp::init(&config(), 1);
        let mut raw = encode_with(&model, Precision::Bf16).to_vec();
        raw[8] = 7; // precision field, little-endian low byte
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(CheckpointError::BadVersion(2))
        ));
    }

    #[test]
    fn rejects_truncated_bf16_payload() {
        let model = Mlp::init(&config(), 1);
        let raw = encode_with(&model, Precision::Bf16);
        let cut = raw.slice(0..raw.len() - 1);
        assert_eq!(decode(cut), Err(CheckpointError::Truncated));
    }

    #[test]
    fn rejects_bad_magic() {
        let model = Mlp::init(&config(), 1);
        let mut raw = encode(&model).to_vec();
        raw[0] = b'X';
        assert_eq!(decode(Bytes::from(raw)), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let model = Mlp::init(&config(), 1);
        let mut raw = encode(&model).to_vec();
        raw[4] = 99;
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(CheckpointError::BadVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let model = Mlp::init(&config(), 1);
        let raw = encode(&model);
        let cut = raw.slice(0..raw.len() - 5);
        assert_eq!(decode(cut), Err(CheckpointError::Truncated));
        assert_eq!(
            decode(Bytes::from_static(b"AS")),
            Err(CheckpointError::Truncated)
        );
    }
}
