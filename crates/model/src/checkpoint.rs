//! Binary model checkpointing.
//!
//! Format (little-endian):
//!
//! ```text
//! magic  "ASGD"            4 bytes
//! version u32              4 bytes
//! num_features u64 | hidden u64 | num_classes u64
//! params  f32 × param_len  (W₁ ‖ b₁ ‖ W₂ ‖ b₂, the `to_flat` layout)
//! ```

use crate::mlp::{Mlp, MlpConfig};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"ASGD";
const VERSION: u32 = 1;

/// Checkpoint decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// Payload shorter than the header claims.
    Truncated,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "truncated checkpoint"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serializes a model to bytes.
pub fn encode(model: &Mlp) -> Bytes {
    let flat = model.to_flat();
    let mut buf = BytesMut::with_capacity(4 + 4 + 24 + 4 * flat.len());
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    let c = model.config();
    buf.put_u64_le(c.num_features as u64);
    buf.put_u64_le(c.hidden as u64);
    buf.put_u64_le(c.num_classes as u64);
    for v in flat {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Deserializes a model.
pub fn decode(mut data: Bytes) -> Result<Mlp, CheckpointError> {
    if data.remaining() < 8 + 24 {
        return Err(CheckpointError::Truncated);
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let config = MlpConfig {
        num_features: data.get_u64_le() as usize,
        hidden: data.get_u64_le() as usize,
        num_classes: data.get_u64_le() as usize,
    };
    let n = config.param_len();
    if data.remaining() < 4 * n {
        return Err(CheckpointError::Truncated);
    }
    let mut flat = Vec::with_capacity(n);
    for _ in 0..n {
        flat.push(data.get_f32_le());
    }
    let mut model = Mlp::zeros(&config);
    model.load_flat(&flat);
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MlpConfig {
        MlpConfig {
            num_features: 12,
            hidden: 5,
            num_classes: 7,
        }
    }

    #[test]
    fn roundtrip_preserves_model_exactly() {
        let model = Mlp::init(&config(), 123);
        let bytes = encode(&model);
        let back = decode(bytes).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn rejects_bad_magic() {
        let model = Mlp::init(&config(), 1);
        let mut raw = encode(&model).to_vec();
        raw[0] = b'X';
        assert_eq!(decode(Bytes::from(raw)), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let model = Mlp::init(&config(), 1);
        let mut raw = encode(&model).to_vec();
        raw[4] = 99;
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(CheckpointError::BadVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let model = Mlp::init(&config(), 1);
        let raw = encode(&model);
        let cut = raw.slice(0..raw.len() - 5);
        assert_eq!(decode(cut), Err(CheckpointError::Truncated));
        assert_eq!(
            decode(Bytes::from_static(b"AS")),
            Err(CheckpointError::Truncated)
        );
    }
}
