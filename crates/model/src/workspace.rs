//! Reusable per-replica training buffers — the zero-allocation hot path.
//!
//! `Mlp::train_batch` has to materialize hidden activations, probabilities,
//! the hidden gradient, a transposed copy of `W₂`, and the gradient buffers
//! on every step. Allocating those per batch is pure overhead once training
//! is in steady state, so a [`Workspace`] owns all of them and
//! [`crate::Mlp::train_batch_ws`] / [`crate::Mlp::loss_and_gradients_ws`]
//! reuse them across calls. Batch-sized matrices grow to the largest batch
//! seen (bounded by the scheduler's `b_max`) and then never touch the
//! allocator again.
//!
//! One workspace belongs to one replica loop (e.g. one GPU-manager thread
//! owns one). Workspaces are plain owned data — to train two replicas
//! concurrently, give each its own. Inference shares the same buffers:
//! [`crate::Mlp::predict_topk_ws`] reuses `h`/`probs` for the forward pass
//! and `order` for per-row top-k selection, so a serving replica's steady
//! state is as allocation-free as a training replica's.
//!
//! Reusing a workspace is *bit-for-bit* equivalent to using a fresh one:
//! every kernel in the hot path fully overwrites the buffer regions it reads
//! back (GEMM with `beta = 0`, row-zeroing SpMM, sentinel-reset scatter
//! table), so stale contents can never leak into results.

use crate::gradients::Gradients;
use crate::mlp::MlpConfig;
use asgd_tensor::Matrix;

/// Scratch buffers for one training step, reused across steps.
///
/// Construct once per replica with [`Workspace::new`] and thread through
/// [`crate::Mlp::train_batch_ws`]. The architecture is fixed at
/// construction; using it with a differently-shaped model panics.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// Hidden activations `relu(X·W₁ + b₁)` (`batch × hidden`).
    pub(crate) h: Matrix,
    /// Softmax probabilities, converted in place to `dlogits`
    /// (`batch × classes`).
    pub(crate) probs: Matrix,
    /// Hidden gradient `dlogits·W₂ᵀ` (`batch × hidden`).
    pub(crate) dh: Matrix,
    /// Transposed copy of `W₂` (`classes × hidden`) so the backward product
    /// runs as a unit-stride `i-k-j` GEMM instead of a strided dot-product
    /// loop (same per-element summation order, so identical results).
    ///
    /// On the sampled-softmax path this is also the *forward* operand (the
    /// gathered-row kernels want class-major rows) and is kept coherent
    /// across steps instead of re-transposed: see `w2t_epoch`.
    pub(crate) w2t: Matrix,
    /// Which `Mlp::w2_epoch` the `w2t` contents mirror; `None` = never
    /// synced. Training paths call `Mlp::sync_w2t` to refresh lazily, and
    /// the sampled update writes both copies coherently so steady-state
    /// sampled steps never pay the `classes × hidden` transpose.
    pub(crate) w2t_epoch: Option<u64>,
    /// Sampled-softmax logits over the candidate set, converted in place to
    /// `dlogits` (`batch × |candidates|`).
    pub(crate) logits_s: Matrix,
    /// Candidate-gathered output bias (`|candidates|`).
    pub(crate) gathered_b2: Vec<f32>,
    /// Compact `∇W₂ᵀ` rows of the candidate classes
    /// (`|candidates| × hidden`).
    pub(crate) gt: Matrix,
    /// Compact `∇b₂` over the candidate set (`|candidates|`).
    pub(crate) b2_scratch: Vec<f32>,
    /// Gradients of the current batch — output of
    /// [`crate::Mlp::loss_and_gradients_ws`].
    pub grads: Gradients,
    /// Feature → index into `grads.w1_updates` scatter table
    /// (`u32::MAX` = untouched); replaces the per-call `HashMap` of the
    /// sparse input-layer gradient. Always all-sentinel between calls.
    pub(crate) slot: Vec<u32>,
    /// Recycled gradient-row buffers for `grads.w1_updates`.
    pub(crate) arena: Vec<Vec<f32>>,
    /// Class-index scratch for per-row top-k selection
    /// ([`crate::Mlp::predict_topk_ws`]); capacity `num_classes`.
    pub(crate) order: Vec<u32>,
}

impl Workspace {
    /// A workspace for `config`-shaped models. Batch-sized buffers start
    /// empty and grow on first use.
    pub fn new(config: &MlpConfig) -> Self {
        Self {
            h: Matrix::zeros(0, config.hidden),
            probs: Matrix::zeros(0, config.num_classes),
            dh: Matrix::zeros(0, config.hidden),
            w2t: Matrix::zeros(config.num_classes, config.hidden),
            w2t_epoch: None,
            logits_s: Matrix::zeros(0, 0),
            gathered_b2: Vec::new(),
            gt: Matrix::zeros(0, config.hidden),
            b2_scratch: Vec::new(),
            grads: Gradients::new(config),
            slot: vec![u32::MAX; config.num_features],
            arena: Vec::new(),
            order: Vec::with_capacity(config.num_classes),
        }
    }

    /// The gradients computed by the last
    /// [`crate::Mlp::loss_and_gradients_ws`] call.
    pub fn grads(&self) -> &Gradients {
        &self.grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_workspace_matches_architecture() {
        let config = MlpConfig {
            num_features: 9,
            hidden: 4,
            num_classes: 5,
        };
        let ws = Workspace::new(&config);
        assert_eq!(ws.w2t.shape(), (5, 4));
        assert_eq!(ws.slot.len(), 9);
        assert!(ws.slot.iter().all(|&s| s == u32::MAX));
        assert_eq!(ws.grads.b1.len(), 4);
        assert_eq!(ws.grads.b2.len(), 5);
    }
}
