//! Model parameters, forward pass, backward pass, SGD update.
//!
//! The batch training path exists in two forms: the workspace variants
//! ([`Mlp::train_batch_ws`], [`Mlp::loss_and_gradients_ws`]) that reuse
//! caller-owned buffers and allocate nothing in steady state, and the
//! original allocating wrappers ([`Mlp::train_batch`],
//! [`Mlp::loss_and_gradients`]) that build a fresh [`Workspace`] per call.
//! Both run the exact same kernels in the exact same order, so their results
//! are bit-identical.

use crate::gradients::Gradients;
use crate::workspace::Workspace;
use asgd_sparse::{ops as sops, CsrMatrix};
use asgd_tensor::{bf16, init, numerics, ops, FlatVec, Matrix, Precision};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone source of `W₂` version stamps. Stamps are globally unique per
/// (model instance, mutation), so a [`Workspace`]'s cached `W₂ᵀ` can only
/// register as fresh against the exact model state it was synced from —
/// even across clones or replica swaps. Stamp *values* never enter any
/// computation, so the global ordering they come from cannot perturb
/// determinism; they only decide when a (bit-exact) re-transpose happens.
static W2_EPOCH: AtomicU64 = AtomicU64::new(0);

fn next_w2_epoch() -> u64 {
    W2_EPOCH.fetch_add(1, Ordering::Relaxed) + 1
}

/// Architecture hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlpConfig {
    /// Input feature dimensionality.
    pub num_features: usize,
    /// Hidden layer width (128 in the paper's testbed).
    pub hidden: usize,
    /// Label-space size.
    pub num_classes: usize,
}

impl MlpConfig {
    /// Total trainable parameters (weights + biases of both layers).
    pub fn param_len(&self) -> usize {
        self.num_features * self.hidden
            + self.hidden
            + self.hidden * self.num_classes
            + self.num_classes
    }
}

/// Result of one training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainOutput {
    /// Mean multi-label cross-entropy over the batch.
    pub loss: f64,
    /// Samples in the batch.
    pub batch_size: usize,
    /// Non-zero input features in the batch (drives simulated kernel time).
    pub batch_nnz: usize,
}

/// The 3-layer MLP: `softmax(relu(X·W₁ + b₁)·W₂ + b₂)`.
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    w1: Matrix,
    b1: Vec<f32>,
    w2: Matrix,
    b2: Vec<f32>,
    /// Version stamp of `w2`, bumped on every mutation that can touch it.
    /// Workspaces compare it against their cached `W₂ᵀ` (see
    /// [`Mlp::sync_w2t`]). Deliberately excluded from `PartialEq`: two
    /// models with identical parameters are equal regardless of history.
    w2_epoch: u64,
}

impl PartialEq for Mlp {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.w1 == other.w1
            && self.b1 == other.b1
            && self.w2 == other.w2
            && self.b2 == other.b2
    }
}

impl Mlp {
    /// Initializes with the paper's scheme (`N(0, 1/√fan_in)` weights, zero
    /// biases) from an explicit seed so all replicas can share one init.
    pub fn init(config: &MlpConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            config: *config,
            w1: init::layer_init(config.num_features, config.hidden, &mut rng),
            b1: vec![0.0; config.hidden],
            w2: init::layer_init(config.hidden, config.num_classes, &mut rng),
            b2: vec![0.0; config.num_classes],
            w2_epoch: next_w2_epoch(),
        }
    }

    /// All-zero model of the right shape (merge/accumulation target).
    pub fn zeros(config: &MlpConfig) -> Self {
        Self {
            config: *config,
            w1: Matrix::zeros(config.num_features, config.hidden),
            b1: vec![0.0; config.hidden],
            w2: Matrix::zeros(config.hidden, config.num_classes),
            b2: vec![0.0; config.num_classes],
            w2_epoch: next_w2_epoch(),
        }
    }

    /// The architecture.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Number of trainable parameters.
    pub fn param_len(&self) -> usize {
        self.config.param_len()
    }

    /// Flattens all parameters into one contiguous vector
    /// (`W₁ ‖ b₁ ‖ W₂ ‖ b₂`) — the wire format of model merging.
    pub fn to_flat(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.write_flat_into(&mut out);
        out
    }

    /// Writes the flat parameter layout of [`Mlp::to_flat`] into a
    /// caller-owned buffer, reusing its allocation — the zero-alloc path
    /// for the merge arena (steady-state calls on a recycled buffer never
    /// touch the heap).
    pub fn write_flat_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.param_len());
        out.extend_from_slice(self.w1.as_slice());
        out.extend_from_slice(&self.b1);
        out.extend_from_slice(self.w2.as_slice());
        out.extend_from_slice(&self.b2);
    }

    /// Loads parameters from the flat format — the read counterpart of
    /// [`Mlp::write_flat_into`], identical to [`Mlp::load_flat`].
    pub fn read_flat_from(&mut self, flat: &[f32]) {
        self.load_flat(flat);
    }

    /// Pulls every parameter a fraction `pull` toward `target` (flat
    /// layout): `θ ← θ + pull·(target − θ)` — CROSSBOW's central-model
    /// blend, applied in place without materializing the replica's own
    /// flat vector.
    ///
    /// # Panics
    /// Panics when the length does not match the architecture.
    pub fn blend_from_flat(&mut self, target: &[f32], pull: f32) {
        assert_eq!(target.len(), self.param_len(), "flat parameter length");
        let mut off = 0usize;
        let mut blend = |params: &mut [f32]| {
            let t = &target[off..off + params.len()];
            off += params.len();
            for (w, &z) in params.iter_mut().zip(t) {
                *w += pull * (z - *w);
            }
        };
        blend(self.w1.as_mut_slice());
        blend(&mut self.b1);
        blend(self.w2.as_mut_slice());
        blend(&mut self.b2);
        self.w2_epoch = next_w2_epoch();
    }

    /// Precision-tagged twin of [`Mlp::write_flat_into`]: exports the flat
    /// parameter layout into a [`FlatVec`], reusing its allocation and
    /// **keeping its storage precision** (an empty default buffer is f32).
    /// The bf16 export narrows each parameter exactly once
    /// (round-to-nearest-even) — the model itself stays f32.
    pub fn write_flat_buf(&self, out: &mut FlatVec) {
        match out {
            FlatVec::F32(v) => self.write_flat_into(v),
            FlatVec::Bf16(v) => {
                // Size once; on a recycled buffer this is a no-op, so the
                // steady state never re-zero-fills (or reallocates) the
                // arena — every element is overwritten by the narrows below.
                v.resize(self.param_len(), 0);
                let mut off = 0usize;
                let mut append = |src: &[f32]| {
                    bf16::narrow_slice(src, &mut v[off..off + src.len()]);
                    off += src.len();
                };
                append(self.w1.as_slice());
                append(&self.b1);
                append(self.w2.as_slice());
                append(&self.b2);
            }
        }
    }

    /// Packs the sparse-merge delta payload over `rows` directly from the
    /// parameters into `out` (cleared and refilled in `out`'s precision;
    /// allocation recycled). The wire format is
    /// `asgd_collective::sparse`'s: the dense `b1` block first, then each
    /// touched row's elements with rows strictly ascending — the W1
    /// feature row for `r < num_features`, otherwise the W2 column of
    /// class `r − num_features` followed by its `b2` entry.
    ///
    /// Values are **bit-identical** to gathering the same indices out of
    /// [`Mlp::write_flat_buf`]'s output: f32 bits verbatim, bf16 narrowed
    /// exactly once per element (narrowing is element-wise, so packing
    /// order cannot change any bit). That equality is what lets the merge
    /// reconstruct a replica's full flat buffer from `(base, delta)`
    /// without this side ever materializing the dense model.
    ///
    /// # Panics
    /// Panics when a row id falls outside `num_features + num_classes`.
    pub fn write_delta_buf(&self, rows: &[u32], out: &mut FlatVec) {
        debug_assert!(
            rows.windows(2).all(|w| w[0] < w[1]),
            "delta rows must be strictly ascending"
        );
        let c = &self.config;
        let w2 = self.w2.as_slice();
        match out {
            FlatVec::F32(v) => {
                v.clear();
                v.extend_from_slice(&self.b1);
                for &r in rows {
                    let r = r as usize;
                    if r < c.num_features {
                        v.extend_from_slice(self.w1.row(r));
                    } else {
                        let cl = r - c.num_features;
                        assert!(cl < c.num_classes, "row {r} outside layout");
                        v.extend((0..c.hidden).map(|k| w2[k * c.num_classes + cl]));
                        v.push(self.b2[cl]);
                    }
                }
            }
            FlatVec::Bf16(v) => {
                v.clear();
                v.extend(self.b1.iter().map(|&x| bf16::narrow(x)));
                for &r in rows {
                    let r = r as usize;
                    if r < c.num_features {
                        v.extend(self.w1.row(r).iter().map(|&x| bf16::narrow(x)));
                    } else {
                        let cl = r - c.num_features;
                        assert!(cl < c.num_classes, "row {r} outside layout");
                        v.extend((0..c.hidden).map(|k| bf16::narrow(w2[k * c.num_classes + cl])));
                        v.push(bf16::narrow(self.b2[cl]));
                    }
                }
            }
        }
    }

    /// Precision-tagged twin of [`Mlp::read_flat_from`]: imports a flat
    /// buffer of either precision. bf16 values widen exactly; no rounding
    /// occurs on import.
    ///
    /// # Panics
    /// Panics when the length does not match the architecture.
    pub fn read_flat_buf(&mut self, flat: &FlatVec) {
        match flat {
            FlatVec::F32(v) => self.load_flat(v),
            FlatVec::Bf16(v) => {
                assert_eq!(v.len(), self.param_len(), "flat parameter length");
                let c = &self.config;
                let mut off = 0;
                let take = |off: &mut usize, n: usize| {
                    let s = *off;
                    *off += n;
                    s..*off
                };
                bf16::widen_slice(
                    &v[take(&mut off, c.num_features * c.hidden)],
                    self.w1.as_mut_slice(),
                );
                bf16::widen_slice(&v[take(&mut off, c.hidden)], &mut self.b1);
                bf16::widen_slice(
                    &v[take(&mut off, c.hidden * c.num_classes)],
                    self.w2.as_mut_slice(),
                );
                bf16::widen_slice(&v[take(&mut off, c.num_classes)], &mut self.b2);
                self.w2_epoch = next_w2_epoch();
            }
        }
    }

    /// Precision-tagged twin of [`Mlp::blend_from_flat`]: the blend math
    /// runs in f32 on exactly-widened targets (`θ ← θ + pull·(widen(z) − θ)`);
    /// the model parameters stay f32, so no narrowing round point exists.
    ///
    /// # Panics
    /// Panics when the length does not match the architecture.
    pub fn blend_from_flat_buf(&mut self, target: &FlatVec, pull: f32) {
        match target {
            FlatVec::F32(v) => self.blend_from_flat(v, pull),
            FlatVec::Bf16(v) => {
                assert_eq!(v.len(), self.param_len(), "flat parameter length");
                let mut off = 0usize;
                let mut blend = |params: &mut [f32]| {
                    let t = &v[off..off + params.len()];
                    off += params.len();
                    for (w, &z) in params.iter_mut().zip(t) {
                        *w += pull * (bf16::widen(z) - *w);
                    }
                };
                blend(self.w1.as_mut_slice());
                blend(&mut self.b1);
                blend(self.w2.as_mut_slice());
                blend(&mut self.b2);
                self.w2_epoch = next_w2_epoch();
            }
        }
    }

    /// A copy of this model with every parameter round-tripped through the
    /// given storage precision (`f32` is an exact clone; `bf16` applies one
    /// round-to-nearest-even per parameter) — what a replica holds after a
    /// checkpoint or redistribution at that precision.
    pub fn quantized(&self, precision: Precision) -> Mlp {
        let mut m = self.clone();
        if precision == Precision::Bf16 {
            let quantize = |params: &mut [f32]| {
                for w in params.iter_mut() {
                    *w = bf16::widen(bf16::narrow(*w));
                }
            };
            quantize(m.w1.as_mut_slice());
            quantize(&mut m.b1);
            quantize(m.w2.as_mut_slice());
            quantize(&mut m.b2);
            m.w2_epoch = next_w2_epoch();
        }
        m
    }

    /// Loads parameters from the flat format produced by [`Mlp::to_flat`].
    ///
    /// # Panics
    /// Panics when the length does not match the architecture.
    pub fn load_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_len(), "flat parameter length");
        let c = &self.config;
        let mut off = 0;
        let take = |off: &mut usize, n: usize| {
            let s = *off;
            *off += n;
            s..*off
        };
        self.w1
            .as_mut_slice()
            .copy_from_slice(&flat[take(&mut off, c.num_features * c.hidden)]);
        self.b1.copy_from_slice(&flat[take(&mut off, c.hidden)]);
        self.w2
            .as_mut_slice()
            .copy_from_slice(&flat[take(&mut off, c.hidden * c.num_classes)]);
        self.b2
            .copy_from_slice(&flat[take(&mut off, c.num_classes)]);
        self.w2_epoch = next_w2_epoch();
    }

    /// L2 norm of all parameters divided by the parameter count — the
    /// regularization measure gating Algorithm 2's weight perturbation.
    pub fn l2_norm_per_param(&self) -> f64 {
        let sq = self.w1.norm_sq()
            + self.b1.iter().map(|&x| (x as f64).powi(2)).sum::<f64>()
            + self.w2.norm_sq()
            + self.b2.iter().map(|&x| (x as f64).powi(2)).sum::<f64>();
        sq.sqrt() / self.param_len() as f64
    }

    /// The output-layer weight matrix (`hidden × num_classes`) — read access
    /// for LSH indexing of output neurons (SLIDE).
    pub fn w2(&self) -> &Matrix {
        &self.w2
    }

    /// Mutable access to the output-layer weights (optimizers).
    ///
    /// Handing out mutable access pessimistically bumps the `W₂` version
    /// stamp — any workspace's cached `W₂ᵀ` re-syncs on its next use.
    pub fn w2_mut(&mut self) -> &mut Matrix {
        self.w2_epoch = next_w2_epoch();
        &mut self.w2
    }

    /// The current `W₂` version stamp (see [`Mlp::sync_w2t`]).
    pub fn w2_epoch(&self) -> u64 {
        self.w2_epoch
    }

    /// Refreshes `ws`'s cached `W₂ᵀ` if (and only if) it is out of date.
    /// The transpose copies bits verbatim, so whether a given call hits or
    /// misses the cache can never change results. Both training backward
    /// passes and the sampled forward pass call this implicitly; it is
    /// public so optimizers applying external sampled gradients (e.g.
    /// [`crate::AdamState::apply_sampled`]) can establish coherence first.
    pub fn sync_w2t(&self, ws: &mut Workspace) {
        if ws.w2t_epoch != Some(self.w2_epoch) {
            self.w2.transpose_into(&mut ws.w2t);
            ws.w2t_epoch = Some(self.w2_epoch);
        }
    }

    /// Mutable access to one input-layer weight row (optimizers).
    pub fn w1_row_mut(&mut self, feature: usize) -> &mut [f32] {
        self.w1.row_mut(feature)
    }

    /// The hidden bias.
    pub fn b1(&self) -> &[f32] {
        &self.b1
    }

    /// Mutable access to the hidden bias (optimizers).
    pub fn b1_mut(&mut self) -> &mut [f32] {
        &mut self.b1
    }

    /// Mutable access to the output bias (optimizers).
    pub fn b2_mut(&mut self) -> &mut [f32] {
        &mut self.b2
    }

    /// The output-layer bias.
    pub fn b2(&self) -> &[f32] {
        &self.b2
    }

    /// Forward through the hidden layer only: `relu(X·W₁ + b₁)`, via the
    /// fused sparse kernel (one pass over `H` instead of three).
    pub fn hidden_forward(&self, x: &CsrMatrix) -> Matrix {
        assert_eq!(x.cols(), self.config.num_features, "input width");
        let mut h = Matrix::zeros(x.rows(), self.config.hidden);
        sops::spmm_bias_relu(x, &self.w1, &self.b1, &mut h);
        h
    }

    /// One *sampled-softmax* SGD step on a single sample — the SLIDE update.
    ///
    /// The softmax and its gradient are restricted to `active` (which must
    /// contain every label of the sample; callers union the LSH candidates
    /// with the true labels). Only the active output neurons and the
    /// sample's input features are touched. Returns the sampled
    /// cross-entropy loss.
    ///
    /// # Panics
    /// Panics when `active` is empty or a label is missing from it.
    pub fn train_sample_sampled(
        &mut self,
        x_idx: &[u32],
        x_val: &[f32],
        h: &[f32],
        labels: &[u32],
        active: &[u32],
        lr: f32,
    ) -> f64 {
        assert!(!active.is_empty(), "empty active set");
        assert_eq!(h.len(), self.config.hidden, "hidden activation width");
        let hidden = self.config.hidden;
        let classes = self.config.num_classes;
        // Logits over the active set.
        let w2 = self.w2.as_slice();
        let mut logits: Vec<f32> = active
            .iter()
            .map(|&c| {
                let c = c as usize;
                debug_assert!(c < classes);
                let mut dot = self.b2[c];
                for (k, &hv) in h.iter().enumerate() {
                    dot += hv * w2[k * classes + c];
                }
                dot
            })
            .collect();
        // Stable softmax over the active set.
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in logits.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in logits.iter_mut() {
            *v *= inv;
        }
        // dlogits = p - uniform(labels); loss over true labels.
        let w = 1.0 / labels.len().max(1) as f32;
        let mut loss = 0.0f64;
        for &y in labels {
            let pos = active
                .iter()
                .position(|&c| c == y)
                .expect("label missing from active set");
            loss -= (w as f64) * (logits[pos].max(1e-30) as f64).ln();
            logits[pos] -= w;
        }
        let dlogits = logits; // renamed: now holds the gradient.

        // dh = Σ_c dlogit_c · w2[:,c] (pre-update weights), ReLU-masked.
        let mut dh = vec![0.0f32; hidden];
        for (i, &c) in active.iter().enumerate() {
            let g = dlogits[i];
            if g == 0.0 {
                continue;
            }
            let c = c as usize;
            for (k, dv) in dh.iter_mut().enumerate() {
                *dv += g * w2[k * classes + c];
            }
        }
        for (dv, &hv) in dh.iter_mut().zip(h) {
            if hv <= 0.0 {
                *dv = 0.0;
            }
        }

        // Update W2 columns + b2 over the active set.
        let w2m = self.w2.as_mut_slice();
        for (i, &c) in active.iter().enumerate() {
            let g = lr * dlogits[i];
            if g == 0.0 {
                continue;
            }
            let c = c as usize;
            for (k, &hv) in h.iter().enumerate() {
                w2m[k * classes + c] -= g * hv;
            }
            self.b2[c] -= g;
        }
        // Update W1 rows for the sample's features + b1.
        for (&f, &v) in x_idx.iter().zip(x_val) {
            let row = self.w1.row_mut(f as usize);
            for (wv, &dv) in row.iter_mut().zip(&dh) {
                *wv -= lr * v * dv;
            }
        }
        for (bv, &dv) in self.b1.iter_mut().zip(&dh) {
            *bv -= lr * dv;
        }
        self.w2_epoch = next_w2_epoch();
        loss
    }

    /// Forward pass: returns `(hidden activations, class probabilities)`.
    pub fn forward(&self, x: &CsrMatrix) -> (Matrix, Matrix) {
        assert_eq!(x.cols(), self.config.num_features, "input width");
        let batch = x.rows();
        let mut h = Matrix::zeros(batch, self.config.hidden);
        let mut probs = Matrix::zeros(batch, self.config.num_classes);
        self.forward_into(x, &mut h, &mut probs);
        (h, probs)
    }

    /// Forward pass into caller-owned buffers — the one kernel sequence
    /// shared by training ([`Mlp::loss_and_gradients_ws`]), evaluation, and
    /// serving ([`Mlp::predict_topk_ws`]). A single body keeps every path
    /// bit-identical: `h` becomes `relu(X·W₁ + b₁)` and `probs` the softmax
    /// class distribution, both reshaped to the batch in place.
    /// Both layers run fused epilogues (`spmm_bias_relu`, `gemm_bias`):
    /// per element, the op sequence is identical to the old separate
    /// GEMM/bias/ReLU sweeps, so results are bit-compatible — the fusion
    /// removes memory passes, not arithmetic.
    fn forward_into(&self, x: &CsrMatrix, h: &mut Matrix, probs: &mut Matrix) {
        let batch = x.rows();
        h.reshape_in_place(batch, self.config.hidden);
        sops::spmm_bias_relu(x, &self.w1, &self.b1, h);
        probs.reshape_in_place(batch, self.config.num_classes);
        ops::gemm_bias(h, &self.w2, &self.b2, probs);
        numerics::softmax_rows_inplace(probs);
    }

    /// Batched top-k inference through a reused [`Workspace`]: forwards the
    /// batch and writes, row-major into `out`, each sample's `k_eff` class
    /// ids ordered by descending score (ties broken by ascending class id,
    /// consistent with `argmax`'s first-max rule). Returns
    /// `k_eff = min(k, num_classes)`, the row stride of `out`.
    ///
    /// Selection runs on the *logits*: softmax is strictly monotone per row,
    /// so the ranking is the one the class probabilities induce, without
    /// paying for the exp/normalize pass. For `k_eff ≤ TOPK_STREAM_MAX` the
    /// logits are never materialized at all — `gemm_bias_topk` streams each
    /// register tile of `H·W₂ + b₂` straight into the selection, skipping
    /// the `batch × num_classes` memory round-trip that dominated this path.
    /// Larger `k` falls back to materialized logits in `ws.probs` plus a
    /// partial sort through `ws.order`; both paths apply the same total
    /// order, so they agree exactly on overlapping `k`.
    ///
    /// In steady state (workspace reused across batches of bounded size)
    /// this allocates nothing: `ws.h` (and on the fallback path `ws.probs` /
    /// `ws.order`) are reused and `out` is resized in place. The tie-break
    /// makes the result a pure function of the logits — independent of
    /// selection internals — so served predictions are reproducible bit for
    /// bit.
    ///
    /// # Panics
    /// Panics when `k == 0`, the batch is empty, or the workspace was built
    /// for a different architecture.
    pub fn predict_topk_ws(
        &self,
        x: &CsrMatrix,
        k: usize,
        ws: &mut Workspace,
        out: &mut Vec<u32>,
    ) -> usize {
        assert!(k >= 1, "k must be at least 1");
        let batch = x.rows();
        assert!(batch > 0, "empty batch");
        assert_eq!(x.cols(), self.config.num_features, "input width");
        assert_eq!(
            ws.slot.len(),
            self.config.num_features,
            "workspace/model architecture mismatch"
        );
        let classes = self.config.num_classes;
        let k_eff = k.min(classes);
        ws.h.reshape_in_place(batch, self.config.hidden);
        sops::spmm_bias_relu(x, &self.w1, &self.b1, &mut ws.h);
        out.clear();
        out.resize(batch * k_eff, 0);
        if k_eff <= ops::TOPK_STREAM_MAX {
            ops::gemm_bias_topk(&ws.h, &self.w2, &self.b2, k_eff, out);
        } else {
            ws.probs.reshape_in_place(batch, classes);
            ops::gemm_bias(&ws.h, &self.w2, &self.b2, &mut ws.probs);
            for r in 0..batch {
                let row = ws.probs.row(r);
                let cmp = |a: &u32, b: &u32| {
                    row[*b as usize]
                        .partial_cmp(&row[*a as usize])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(b))
                };
                ws.order.clear();
                ws.order.extend(0..classes as u32);
                if k_eff < classes {
                    ws.order.select_nth_unstable_by(k_eff - 1, cmp);
                }
                ws.order[..k_eff].sort_unstable_by(cmp);
                out[r * k_eff..(r + 1) * k_eff].copy_from_slice(&ws.order[..k_eff]);
            }
        }
        k_eff
    }

    /// Allocating wrapper around [`Mlp::predict_topk_ws`]: fresh workspace
    /// per call, returns the row-major `batch × min(k, num_classes)` top-k
    /// class ids. Bit-identical to the workspace path.
    pub fn predict_topk(&self, x: &CsrMatrix, k: usize) -> Vec<u32> {
        let mut ws = Workspace::new(&self.config);
        let mut out = Vec::new();
        self.predict_topk_ws(x, k, &mut ws, &mut out);
        out
    }

    /// Computes the multi-label cross-entropy loss and the gradient, without
    /// touching the parameters. Buffers come from `ws`; the gradients land
    /// in `ws.grads`. In steady state (workspace reused across batches of
    /// bounded size) this performs **no heap allocation**.
    ///
    /// The target distribution of a sample is uniform over its label set
    /// (the SLIDE-testbed convention); label-free samples contribute neither
    /// loss nor gradient.
    ///
    /// # Panics
    /// Panics when the workspace was built for a different architecture or
    /// on a labels/batch length mismatch.
    pub fn loss_and_gradients_ws<L: AsRef<[u32]>>(
        &self,
        x: &CsrMatrix,
        labels: &[L],
        ws: &mut Workspace,
    ) -> f64 {
        let batch = x.rows();
        assert_eq!(labels.len(), batch, "labels/batch mismatch");
        assert!(batch > 0, "empty batch");
        assert_eq!(x.cols(), self.config.num_features, "input width");
        assert_eq!(
            ws.slot.len(),
            self.config.num_features,
            "workspace/model architecture mismatch"
        );
        self.sync_w2t(ws);
        let Workspace {
            h,
            probs,
            dh,
            w2t,
            grads,
            slot,
            arena,
            ..
        } = ws;
        // Clear any sampled-path leftovers so a gradient consumer never
        // sees both output-layer representations at once.
        for (_, mut row) in grads.w2_updates.drain(..) {
            row.clear();
            arena.push(row);
        }
        grads.b2_updates.clear();

        // Forward into the workspace.
        self.forward_into(x, h, probs);

        // Loss, then convert `probs` into dlogits = (probs - target)/batch.
        let mut loss = 0.0f64;
        let mut contributing = 0usize;
        for (r, labs) in labels.iter().enumerate() {
            let labs = labs.as_ref();
            let row = probs.row_mut(r);
            if labs.is_empty() {
                row.fill(0.0);
                continue;
            }
            contributing += 1;
            let w = 1.0 / labs.len() as f32;
            for &y in labs {
                let p = row[y as usize].max(1e-30);
                loss -= (w as f64) * (p as f64).ln();
                row[y as usize] -= w;
            }
        }
        let scale = 1.0 / batch as f32;
        ops::scale(scale, probs.as_mut_slice());
        let loss = if contributing == 0 {
            0.0
        } else {
            loss / contributing as f64
        };

        // Backward. dW2 = hᵀ·dlogits ; db2 = Σ_rows dlogits.
        ops::gemm_tn(1.0, h, probs, 0.0, &mut grads.w2);
        col_sums(probs, &mut grads.b2);
        // dh = dlogits·W₂ᵀ, masked by ReLU. The materialized W₂ᵀ (synced
        // above) turns the strided dot-product loop of `gemm_nt` into a
        // unit-stride `i-k-j` GEMM; each dh element still sums over classes
        // in ascending order, so the result is identical — just several
        // times faster.
        dh.reshape_in_place(batch, self.config.hidden);
        ops::gemm(1.0, probs, w2t, 0.0, dh);
        numerics::relu_backward_inplace(dh, h);
        // dW1 = Xᵀ·dh ; db1 = Σ_rows dh.
        sparse_weight_grad(x, dh, slot, arena, &mut grads.w1_updates);
        col_sums(dh, &mut grads.b1);
        loss
    }

    /// Allocating wrapper around [`Mlp::loss_and_gradients_ws`]: builds a
    /// fresh [`Workspace`] per call and returns the gradients through
    /// `grads`. Results are bit-identical to the workspace path.
    pub fn loss_and_gradients<L: AsRef<[u32]>>(
        &self,
        x: &CsrMatrix,
        labels: &[L],
        grads: &mut Gradients,
    ) -> f64 {
        let mut ws = Workspace::new(&self.config);
        std::mem::swap(&mut ws.grads, grads);
        let loss = self.loss_and_gradients_ws(x, labels, &mut ws);
        std::mem::swap(&mut ws.grads, grads);
        loss
    }

    /// Applies one SGD step: `θ ← θ − lr·∇θ`.
    pub fn apply_gradients(&mut self, grads: &Gradients, lr: f32) {
        // W1 receives a *sparse* update: only features present in the batch
        // have non-zero gradient rows.
        for &(feature, ref grow) in &grads.w1_updates {
            let wrow = self.w1.row_mut(feature as usize);
            for (w, &g) in wrow.iter_mut().zip(grow) {
                *w -= lr * g;
            }
        }
        ops::axpy(-lr, &grads.b1, &mut self.b1);
        ops::axpy(-lr, grads.w2.as_slice(), self.w2.as_mut_slice());
        ops::axpy(-lr, &grads.b2, &mut self.b2);
        self.w2_epoch = next_w2_epoch();
    }

    /// One full SGD step on a batch (forward + backward + update) using
    /// caller-owned buffers; returns the loss and batch statistics used by
    /// the device cost model. This is the trainer hot path: with a reused
    /// workspace, steady-state steps allocate nothing.
    pub fn train_batch_ws<L: AsRef<[u32]>>(
        &mut self,
        x: &CsrMatrix,
        labels: &[L],
        lr: f32,
        ws: &mut Workspace,
    ) -> TrainOutput {
        let loss = self.loss_and_gradients_ws(x, labels, ws);
        self.apply_gradients(&ws.grads, lr);
        TrainOutput {
            loss,
            batch_size: x.rows(),
            batch_nnz: x.nnz(),
        }
    }

    /// Allocating wrapper around [`Mlp::train_batch_ws`] (fresh workspace
    /// per call) — convenient for tests and one-off steps; long-running
    /// loops should hold a [`Workspace`].
    pub fn train_batch<L: AsRef<[u32]>>(
        &mut self,
        x: &CsrMatrix,
        labels: &[L],
        lr: f32,
    ) -> TrainOutput {
        let mut ws = Workspace::new(&self.config);
        self.train_batch_ws(x, labels, lr, &mut ws)
    }

    /// Sampled-softmax twin of [`Mlp::loss_and_gradients_ws`]: the output
    /// layer — forward, softmax, loss, and gradient — is restricted to the
    /// candidate classes `cand` (sorted ascending, deduplicated, and
    /// containing every label of the batch; see
    /// `asgd_slide::CandidateSampler`). The hidden layer is identical to
    /// the dense path. Work and memory on the output layer scale with
    /// `|cand|` instead of `num_classes`, which is what makes full
    /// label-scale training tractable.
    ///
    /// Output-layer gradients land *sparsely* in `ws.grads.w2_updates` /
    /// `ws.grads.b2_updates` (the dense `w2`/`b2` buffers are untouched);
    /// apply them with [`Mlp::apply_gradients_sampled`] or
    /// [`crate::AdamState::apply_sampled`]. `dW₂` active columns come from
    /// the existing `gemm_tn` on the compact dlogits, `dh` flows through
    /// [`asgd_tensor::ops::gemm_nn_gather`] over the cached `W₂ᵀ`, and the
    /// forward logits come from [`asgd_tensor::ops::gemm_nt_gather_bias`] —
    /// all under the crate-wide deterministic reduction contract, so
    /// results are bit-identical at any thread count.
    ///
    /// The candidate softmax normalizes over `cand` only, so losses are a
    /// *sampled* approximation of the dense objective (they track it to
    /// within the negative-sampling bias); per-row loss/`dlogits` math is
    /// otherwise exactly the dense code. In steady state (reused workspace,
    /// bounded batch and candidate count) this allocates nothing.
    ///
    /// # Panics
    /// Panics on shape mismatches, an empty candidate set, or a batch label
    /// missing from `cand`.
    pub fn loss_and_gradients_sampled_ws<L: AsRef<[u32]>>(
        &self,
        x: &CsrMatrix,
        labels: &[L],
        cand: &[u32],
        ws: &mut Workspace,
    ) -> f64 {
        let batch = x.rows();
        assert_eq!(labels.len(), batch, "labels/batch mismatch");
        assert!(batch > 0, "empty batch");
        assert!(!cand.is_empty(), "empty candidate set");
        assert_eq!(x.cols(), self.config.num_features, "input width");
        assert_eq!(
            ws.slot.len(),
            self.config.num_features,
            "workspace/model architecture mismatch"
        );
        debug_assert!(
            cand.windows(2).all(|w| w[0] < w[1]),
            "candidate set must be sorted and deduplicated"
        );
        self.sync_w2t(ws);
        let s = cand.len();
        let hidden = self.config.hidden;
        let Workspace {
            h,
            logits_s,
            gathered_b2,
            dh,
            w2t,
            gt,
            b2_scratch,
            grads,
            slot,
            arena,
            ..
        } = ws;

        // Forward: dense hidden layer, candidate-gathered output layer.
        h.reshape_in_place(batch, hidden);
        sops::spmm_bias_relu(x, &self.w1, &self.b1, h);
        gathered_b2.clear();
        gathered_b2.extend(cand.iter().map(|&c| self.b2[c as usize]));
        logits_s.reshape_in_place(batch, s);
        ops::gemm_nt_gather_bias(h, w2t, cand, gathered_b2, logits_s);
        numerics::softmax_rows_inplace(logits_s);

        // Loss, then convert `logits_s` in place into the compact
        // dlogits = (p − target)/batch — the same per-row math as the dense
        // path, with label positions found in the sorted candidate list.
        let mut loss = 0.0f64;
        let mut contributing = 0usize;
        for (r, labs) in labels.iter().enumerate() {
            let labs = labs.as_ref();
            let row = logits_s.row_mut(r);
            if labs.is_empty() {
                row.fill(0.0);
                continue;
            }
            contributing += 1;
            let w = 1.0 / labs.len() as f32;
            for &y in labs {
                let pos = cand
                    .binary_search(&y)
                    .expect("label missing from candidate set");
                let p = row[pos].max(1e-30);
                loss -= (w as f64) * (p as f64).ln();
                row[pos] -= w;
            }
        }
        ops::scale(1.0 / batch as f32, logits_s.as_mut_slice());
        let loss = if contributing == 0 {
            0.0
        } else {
            loss / contributing as f64
        };

        // Backward. Compact ∇W₂ᵀ rows: dlogitsᵀ·h (the compact dlogits is
        // dense, so the plain kernel applies); compact ∇b₂: column sums.
        gt.reshape_in_place(s, hidden);
        ops::gemm_tn(1.0, logits_s, h, 0.0, gt);
        b2_scratch.resize(s, 0.0);
        col_sums(logits_s, b2_scratch);
        // Scatter into the sparse output-layer gradient, recycling last
        // batch's rows through the shared hidden-width arena. `cand` is
        // ascending, so the update lists are born sorted.
        for (_, mut row) in grads.w2_updates.drain(..) {
            row.clear();
            arena.push(row);
        }
        grads.b2_updates.clear();
        for (i, &c) in cand.iter().enumerate() {
            let mut row = arena.pop().unwrap_or_default();
            row.extend_from_slice(gt.row(i));
            grads.w2_updates.push((c, row));
            grads.b2_updates.push((c, b2_scratch[i]));
        }
        // dh = dlogitsₛ·gather(W₂ᵀ, cand), masked by ReLU.
        dh.reshape_in_place(batch, hidden);
        ops::gemm_nn_gather(1.0, logits_s, w2t, cand, 0.0, dh);
        numerics::relu_backward_inplace(dh, h);
        // dW1 = Xᵀ·dh ; db1 = Σ_rows dh — unchanged from the dense path.
        sparse_weight_grad(x, dh, slot, arena, &mut grads.w1_updates);
        col_sums(dh, &mut grads.b1);
        loss
    }

    /// Applies one SGD step from *sampled* gradients: sparse `W₁` rows and
    /// dense `b₁` exactly as [`Mlp::apply_gradients`]; the output layer as
    /// a sparse column update over `grads.w2_updates` / `grads.b2_updates`.
    ///
    /// Each touched `W₂` column and its cached `W₂ᵀ` row in `ws` are
    /// written coherently from one computed value, so the cache stays valid
    /// without re-transposing — steady-state sampled training never pays
    /// the `classes × hidden` transpose.
    ///
    /// # Panics
    /// Panics when `ws`'s cached `W₂ᵀ` is stale (run the sampled forward —
    /// or [`Mlp::sync_w2t`] — against this model first).
    pub fn apply_gradients_sampled(&mut self, grads: &Gradients, lr: f32, ws: &mut Workspace) {
        assert_eq!(
            ws.w2t_epoch,
            Some(self.w2_epoch),
            "stale W2ᵀ cache: sync the workspace against this model first"
        );
        for &(feature, ref grow) in &grads.w1_updates {
            let wrow = self.w1.row_mut(feature as usize);
            for (w, &g) in wrow.iter_mut().zip(grow) {
                *w -= lr * g;
            }
        }
        ops::axpy(-lr, &grads.b1, &mut self.b1);
        let classes = self.config.num_classes;
        let w2 = self.w2.as_mut_slice();
        for &(c, ref grow) in &grads.w2_updates {
            let c = c as usize;
            let trow = ws.w2t.row_mut(c);
            for (k, (t, &g)) in trow.iter_mut().zip(grow).enumerate() {
                let nv = *t - lr * g;
                *t = nv;
                w2[k * classes + c] = nv;
            }
        }
        for &(c, g) in &grads.b2_updates {
            self.b2[c as usize] -= lr * g;
        }
        self.w2_epoch = next_w2_epoch();
        ws.w2t_epoch = Some(self.w2_epoch);
    }

    /// One full sampled-softmax SGD step on a batch (forward + backward +
    /// sparse update) — the full-label-scale counterpart of
    /// [`Mlp::train_batch_ws`]. Candidate selection is the caller's job
    /// (`asgd_slide::CandidateSampler`), keeping this crate free of any LSH
    /// dependency and the candidate set an explicit, reproducible input.
    pub fn train_batch_sampled_ws<L: AsRef<[u32]>>(
        &mut self,
        x: &CsrMatrix,
        labels: &[L],
        cand: &[u32],
        lr: f32,
        ws: &mut Workspace,
    ) -> TrainOutput {
        let loss = self.loss_and_gradients_sampled_ws(x, labels, cand, ws);
        let grads = std::mem::replace(&mut ws.grads, Gradients::hollow());
        self.apply_gradients_sampled(&grads, lr, ws);
        ws.grads = grads;
        TrainOutput {
            loss,
            batch_size: x.rows(),
            batch_nnz: x.nnz(),
        }
    }
}

/// `out[j] = Σ_rows m[r][j]`.
fn col_sums(m: &Matrix, out: &mut [f32]) {
    assert_eq!(m.cols(), out.len(), "col_sums width");
    out.fill(0.0);
    for r in 0..m.rows() {
        for (o, &v) in out.iter_mut().zip(m.row(r)) {
            *o += v;
        }
    }
}

/// Computes the sparse rows of `Xᵀ·dh` as `(feature, gradient row)` pairs
/// sorted by feature — the natural gradient layout for a sparse input layer,
/// where updating only touched features is both the correct math and the
/// fast path.
///
/// Allocation-free in steady state: `slot` is a feature → output-index
/// scatter table (`u32::MAX` sentinel, restored before returning) replacing
/// the per-call `HashMap`, and finished gradient rows are recycled through
/// `arena`. Per-feature accumulation happens in batch encounter order —
/// exactly the order the hash-map formulation used — so results match it
/// bit for bit.
fn sparse_weight_grad(
    x: &CsrMatrix,
    dh: &Matrix,
    slot: &mut [u32],
    arena: &mut Vec<Vec<f32>>,
    out: &mut Vec<(u32, Vec<f32>)>,
) {
    let hidden = dh.cols();
    // Recycle the previous batch's rows.
    for (_, mut row) in out.drain(..) {
        row.clear();
        arena.push(row);
    }
    debug_assert!(slot.iter().all(|&s| s == u32::MAX), "stale scatter table");
    for r in 0..x.rows() {
        let (idx, val) = x.row(r);
        let drow = dh.row(r);
        for (&f, &v) in idx.iter().zip(val) {
            let s = slot[f as usize];
            let g = if s == u32::MAX {
                slot[f as usize] = out.len() as u32;
                let mut row = arena.pop().unwrap_or_default();
                row.resize(hidden, 0.0);
                out.push((f, row));
                &mut out.last_mut().expect("just pushed").1
            } else {
                &mut out[s as usize].1
            };
            for (gv, &dv) in g.iter_mut().zip(drow) {
                *gv += v * dv;
            }
        }
    }
    // Reset the sentinels *before* sorting — slots index pre-sort positions.
    for &(f, _) in out.iter() {
        slot[f as usize] = u32::MAX;
    }
    out.sort_unstable_by_key(|(f, _)| *f);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> MlpConfig {
        MlpConfig {
            num_features: 10,
            hidden: 6,
            num_classes: 4,
        }
    }

    fn tiny_batch() -> (CsrMatrix, Vec<Vec<u32>>) {
        let x = CsrMatrix::from_rows(
            10,
            &[
                (vec![0, 3, 7], vec![1.0, 0.5, 2.0]),
                (vec![2, 3], vec![1.5, -0.5]),
                (vec![9], vec![1.0]),
            ],
        )
        .unwrap();
        let labels = vec![vec![0], vec![1, 3], vec![2]];
        (x, labels)
    }

    #[test]
    fn forward_produces_distributions() {
        let m = Mlp::init(&tiny_config(), 1);
        let (x, _) = tiny_batch();
        let (h, p) = m.forward(&x);
        assert_eq!(h.shape(), (3, 6));
        assert_eq!(p.shape(), (3, 4));
        for r in 0..3 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(h.row(r).iter().all(|&v| v >= 0.0), "ReLU output negative");
        }
    }

    #[test]
    fn training_reduces_loss_on_fixed_batch() {
        let mut m = Mlp::init(&tiny_config(), 2);
        let (x, labels) = tiny_batch();
        let first = m.train_batch(&x, &labels, 0.5).loss;
        let mut last = first;
        for _ in 0..50 {
            last = m.train_batch(&x, &labels, 0.5).loss;
        }
        assert!(
            last < first * 0.5,
            "loss did not drop: first {first}, last {last}"
        );
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Check dL/dW2 and dL/dW1 entries against central differences.
        let config = tiny_config();
        let m = Mlp::init(&config, 3);
        let (x, labels) = tiny_batch();
        let mut grads = Gradients::new(&config);
        m.loss_and_gradients(&x, &labels, &mut grads);

        let eps = 1e-3f32;
        let loss_of = |model: &Mlp| {
            let mut g = Gradients::new(&config);
            // loss is averaged over contributing samples: recompute the
            // same quantity the backward pass derives from.
            model.loss_and_gradients(&x, &labels, &mut g)
        };

        // Spot-check a few W2 coordinates.
        for &(i, j) in &[(0usize, 0usize), (3, 2), (5, 3)] {
            let mut mp = m.clone();
            mp.w2.set(i, j, mp.w2.at(i, j) + eps);
            let mut mm = m.clone();
            mm.w2.set(i, j, mm.w2.at(i, j) - eps);
            let num = (loss_of(&mp) - loss_of(&mm)) / (2.0 * eps as f64);
            // Backward computes gradient of (batch-mean of per-sample loss
            // over batch size), while loss reports mean over contributing
            // samples; here all samples contribute, so scales match.
            let ana = grads.w2.at(i, j) as f64;
            assert!(
                (num - ana).abs() < 5e-3 * (1.0 + ana.abs()),
                "W2[{i}][{j}]: numeric {num} vs analytic {ana}"
            );
        }

        // Spot-check W1 rows for features present in the batch (0, 3, 9)
        // and absent (5).
        let grad_w1 = |f: u32, j: usize| -> f64 {
            grads
                .w1_updates
                .iter()
                .find(|(ff, _)| *ff == f)
                .map(|(_, row)| row[j] as f64)
                .unwrap_or(0.0)
        };
        for &(f, j) in &[(0u32, 1usize), (3, 0), (9, 5), (5, 2)] {
            let mut mp = m.clone();
            mp.w1.set(f as usize, j, mp.w1.at(f as usize, j) + eps);
            let mut mm = m.clone();
            mm.w1.set(f as usize, j, mm.w1.at(f as usize, j) - eps);
            let num = (loss_of(&mp) - loss_of(&mm)) / (2.0 * eps as f64);
            let ana = grad_w1(f, j);
            assert!(
                (num - ana).abs() < 5e-3 * (1.0 + ana.abs()),
                "W1[{f}][{j}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn label_free_samples_do_not_contribute() {
        let config = tiny_config();
        let m = Mlp::init(&config, 4);
        let x = CsrMatrix::from_rows(10, &[(vec![1], vec![1.0]), (vec![2], vec![1.0])]).unwrap();
        let labels_with = vec![vec![1u32], vec![]];
        let labels_solo = vec![vec![1u32]];
        let x_solo = x.select_rows(&[0]);
        let mut g_with = Gradients::new(&config);
        let mut g_solo = Gradients::new(&config);
        let l_with = m.loss_and_gradients(&x, &labels_with, &mut g_with);
        let l_solo = m.loss_and_gradients(&x_solo, &labels_solo, &mut g_solo);
        // Same loss (mean over contributing samples)...
        assert!((l_with - l_solo).abs() < 1e-9);
        // ...and the batch-size normalization differs by the factor 2.
        assert!((g_with.w2.at(0, 0) * 2.0 - g_solo.w2.at(0, 0)).abs() < 1e-6);
    }

    #[test]
    fn flat_roundtrip_preserves_model() {
        let config = tiny_config();
        let m = Mlp::init(&config, 5);
        let flat = m.to_flat();
        assert_eq!(flat.len(), config.param_len());
        let mut m2 = Mlp::zeros(&config);
        m2.load_flat(&flat);
        assert_eq!(m, m2);
    }

    #[test]
    fn write_flat_into_reuses_the_buffer_and_matches_to_flat() {
        let config = tiny_config();
        let a = Mlp::init(&config, 5);
        let b = Mlp::init(&config, 6);
        let mut buf = Vec::new();
        a.write_flat_into(&mut buf);
        assert_eq!(buf, a.to_flat());
        let ptr = buf.as_ptr();
        b.write_flat_into(&mut buf);
        assert_eq!(buf, b.to_flat());
        assert_eq!(buf.as_ptr(), ptr, "recycled write must not reallocate");
        let mut m2 = Mlp::zeros(&config);
        m2.read_flat_from(&buf);
        assert_eq!(m2, b);
    }

    #[test]
    fn blend_from_flat_matches_flat_space_blend() {
        let config = tiny_config();
        let mut direct = Mlp::init(&config, 5);
        let reference = direct.clone();
        let target = Mlp::init(&config, 6).to_flat();
        let pull = 0.37f32;
        direct.blend_from_flat(&target, pull);
        let mut flat = reference.to_flat();
        for (w, &z) in flat.iter_mut().zip(&target) {
            *w += pull * (z - *w);
        }
        let mut expect = Mlp::zeros(&config);
        expect.load_flat(&flat);
        assert_eq!(direct, expect);
    }

    #[test]
    fn flat_buf_f32_matches_untagged_path_exactly() {
        let config = tiny_config();
        let a = Mlp::init(&config, 5);
        let mut buf = FlatVec::default();
        a.write_flat_buf(&mut buf);
        assert_eq!(buf, FlatVec::F32(a.to_flat()));
        let mut m2 = Mlp::zeros(&config);
        m2.read_flat_buf(&buf);
        assert_eq!(m2, a);
        let mut blended_buf = Mlp::init(&config, 7);
        let mut blended_flat = blended_buf.clone();
        blended_buf.blend_from_flat_buf(&buf, 0.41);
        blended_flat.blend_from_flat(&a.to_flat(), 0.41);
        assert_eq!(blended_buf, blended_flat);
    }

    #[test]
    fn flat_buf_bf16_roundtrip_is_one_rounding() {
        let config = tiny_config();
        let a = Mlp::init(&config, 5);
        let mut buf = FlatVec::empty(Precision::Bf16);
        a.write_flat_buf(&mut buf);
        assert_eq!(buf.len(), config.param_len());
        assert_eq!(buf.byte_len(), 2 * config.param_len());
        // Import widens exactly: the reloaded model equals quantized(a).
        let mut m2 = Mlp::zeros(&config);
        m2.read_flat_buf(&buf);
        assert_eq!(m2, a.quantized(Precision::Bf16));
        // A second export of the reloaded model is a fixed point (narrow is
        // idempotent on already-narrowed values): same bits.
        let mut buf2 = FlatVec::empty(Precision::Bf16);
        m2.write_flat_buf(&mut buf2);
        assert_eq!(buf, buf2);
        // Recycled bf16 export must not reallocate.
        let ptr = buf.as_ptr_addr();
        a.write_flat_buf(&mut buf);
        assert_eq!(buf.as_ptr_addr(), ptr, "recycled write must not reallocate");
    }

    #[test]
    fn blend_from_flat_buf_bf16_widens_then_blends_in_f32() {
        let config = tiny_config();
        let target = Mlp::init(&config, 6);
        let mut buf = FlatVec::empty(Precision::Bf16);
        target.write_flat_buf(&mut buf);
        let mut direct = Mlp::init(&config, 5);
        let reference = direct.clone();
        direct.blend_from_flat_buf(&buf, 0.37);
        // Spec: widen the bf16 target, then the f32 blend formula.
        let widened: Vec<f32> = match &buf {
            FlatVec::Bf16(v) => v.iter().map(|&b| bf16::widen(b)).collect(),
            _ => unreachable!(),
        };
        let mut expect = reference.clone();
        expect.blend_from_flat(&widened, 0.37);
        assert_eq!(direct, expect);
    }

    #[test]
    fn quantized_f32_is_identity() {
        let config = tiny_config();
        let a = Mlp::init(&config, 9);
        assert_eq!(a.quantized(Precision::F32), a);
        // bf16 quantization is idempotent.
        let q = a.quantized(Precision::Bf16);
        assert_eq!(q.quantized(Precision::Bf16), q);
    }

    #[test]
    fn train_batch_accepts_borrowed_label_slices() {
        let config = tiny_config();
        let (x, labels) = tiny_batch();
        let mut owned = Mlp::init(&config, 5);
        let mut borrowed = owned.clone();
        let out_owned = owned.train_batch(&x, &labels, 0.1);
        let views: Vec<&[u32]> = labels.iter().map(|l| l.as_slice()).collect();
        let out_borrowed = borrowed.train_batch(&x, &views, 0.1);
        assert_eq!(out_owned, out_borrowed);
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn l2_norm_per_param_of_zero_model_is_zero() {
        let m = Mlp::zeros(&tiny_config());
        assert_eq!(m.l2_norm_per_param(), 0.0);
        let m = Mlp::init(&tiny_config(), 6);
        assert!(m.l2_norm_per_param() > 0.0);
    }

    #[test]
    fn identical_seeds_identical_models() {
        let a = Mlp::init(&tiny_config(), 77);
        let b = Mlp::init(&tiny_config(), 77);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "flat parameter length")]
    fn load_flat_wrong_length_panics() {
        let mut m = Mlp::zeros(&tiny_config());
        m.load_flat(&[0.0; 3]);
    }

    #[test]
    fn sampled_step_with_full_active_set_matches_dense_step() {
        // When the active set is ALL classes, the sampled update must equal
        // the dense single-sample update exactly.
        let config = tiny_config();
        let mut sampled = Mlp::init(&config, 21);
        let mut dense = sampled.clone();
        let x = CsrMatrix::from_rows(10, &[(vec![1, 4], vec![1.0, -0.5])]).unwrap();
        let labels = vec![vec![2u32]];
        let all: Vec<u32> = (0..config.num_classes as u32).collect();
        let h = sampled.hidden_forward(&x);
        let (idx, val) = x.row(0);
        let loss_s = sampled.train_sample_sampled(idx, val, h.row(0), &[2], &all, 0.1);
        let out_d = dense.train_batch(&x, &labels, 0.1);
        assert!(
            (loss_s - out_d.loss).abs() < 1e-5,
            "{loss_s} vs {}",
            out_d.loss
        );
        let fs = sampled.to_flat();
        let fd = dense.to_flat();
        for (a, b) in fs.iter().zip(&fd) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn sampled_step_restricted_set_touches_only_active_columns() {
        let config = tiny_config();
        let mut m = Mlp::init(&config, 22);
        let before = m.w2().clone();
        let x = CsrMatrix::from_rows(10, &[(vec![0], vec![1.0])]).unwrap();
        let h = m.hidden_forward(&x);
        let (idx, val) = x.row(0);
        m.train_sample_sampled(idx, val, h.row(0), &[1], &[1, 3], 0.2);
        for c in 0..config.num_classes {
            let changed = (0..config.hidden).any(|k| m.w2().at(k, c) != before.at(k, c));
            assert_eq!(changed, c == 1 || c == 3, "class {c}");
        }
    }

    #[test]
    #[should_panic(expected = "label missing")]
    fn sampled_step_requires_labels_in_active_set() {
        let config = tiny_config();
        let mut m = Mlp::init(&config, 23);
        let x = CsrMatrix::from_rows(10, &[(vec![0], vec![1.0])]).unwrap();
        let h = m.hidden_forward(&x);
        let (idx, val) = x.row(0);
        m.train_sample_sampled(idx, val, h.row(0), &[2], &[0, 1], 0.1);
    }

    #[test]
    fn hidden_forward_matches_full_forward() {
        let m = Mlp::init(&tiny_config(), 24);
        let (x, _) = tiny_batch();
        let h1 = m.hidden_forward(&x);
        let (h2, _) = m.forward(&x);
        assert_eq!(h1, h2);
    }

    #[test]
    fn apply_gradients_is_linear_in_lr() {
        let config = tiny_config();
        let m0 = Mlp::init(&config, 31);
        let (x, labels) = tiny_batch();
        let mut grads = Gradients::new(&config);
        m0.loss_and_gradients(&x, &labels, &mut grads);
        // One step at lr (a+b) == step at a then step at b (same grads).
        let (a, b) = (0.07f32, 0.13f32);
        let mut once = m0.clone();
        once.apply_gradients(&grads, a + b);
        let mut twice = m0.clone();
        twice.apply_gradients(&grads, a);
        twice.apply_gradients(&grads, b);
        let fo = once.to_flat();
        let ft = twice.to_flat();
        for (x, y) in fo.iter().zip(&ft) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_descent_direction_reduces_loss_locally() {
        let config = tiny_config();
        let m = Mlp::init(&config, 32);
        let (x, labels) = tiny_batch();
        let mut grads = Gradients::new(&config);
        let loss0 = m.loss_and_gradients(&x, &labels, &mut grads);
        // A tiny step along -grad must not increase the loss.
        let mut stepped = m.clone();
        stepped.apply_gradients(&grads, 1e-3);
        let mut g2 = Gradients::new(&config);
        let loss1 = stepped.loss_and_gradients(&x, &labels, &mut g2);
        assert!(loss1 <= loss0 + 1e-9, "{loss0} -> {loss1}");
    }

    /// A batch big enough to engage the parallel kernel paths
    /// (`MIN_PAR_ROWS`-wide outputs) with a pseudo-random sparsity pattern.
    fn wide_batch(config: &MlpConfig, batch: usize, seed: u64) -> (CsrMatrix, Vec<Vec<u32>>) {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut rows = Vec::with_capacity(batch);
        let mut labels = Vec::with_capacity(batch);
        for _ in 0..batch {
            let nnz = 2 + (next() as usize % 6);
            let mut cols = std::collections::BTreeSet::new();
            for _ in 0..nnz {
                cols.insert((next() as usize % config.num_features) as u32);
            }
            let idx: Vec<u32> = cols.into_iter().collect();
            let val: Vec<f32> = idx
                .iter()
                .map(|_| (next() % 9) as f32 / 4.0 - 1.0)
                .collect();
            rows.push((idx, val));
            labels.push(vec![(next() as usize % config.num_classes) as u32]);
        }
        let x = CsrMatrix::from_rows(config.num_features, &rows).unwrap();
        (x, labels)
    }

    #[test]
    fn train_batch_bit_identical_across_thread_counts() {
        // End-to-end determinism over the worker pool: identical parameters
        // after a training step at 1 thread and at 8 threads.
        let config = MlpConfig {
            num_features: 80,
            hidden: 32,
            num_classes: 48,
        };
        let (x, labels) = wide_batch(&config, 64, 17);
        let run = |threads: usize| {
            asgd_tensor::parallel::override_threads(threads);
            let mut m = Mlp::init(&config, 41);
            let mut losses = Vec::new();
            for _ in 0..3 {
                losses.push(m.train_batch(&x, &labels, 0.05).loss.to_bits());
            }
            (m.to_flat(), losses)
        };
        let single = run(1);
        let eight = run(8);
        asgd_tensor::parallel::override_threads(0);
        assert_eq!(single.1, eight.1, "losses diverged");
        assert_eq!(single.0, eight.0, "parameters diverged");
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_fresh_allocation() {
        // Two consecutive steps through ONE workspace must match two
        // fresh-allocation steps bit for bit — stale buffer contents must
        // never leak into results.
        let config = MlpConfig {
            num_features: 70,
            hidden: 24,
            num_classes: 36,
        };
        let (xa, la) = wide_batch(&config, 48, 5);
        let (xb, lb) = wide_batch(&config, 32, 6); // smaller: shrink path
        let (xc, lc) = wide_batch(&config, 48, 7); // regrow path

        let mut reused = Mlp::init(&config, 9);
        let mut fresh = reused.clone();
        let mut ws = crate::workspace::Workspace::new(&config);

        for (x, labels) in [(&xa, &la), (&xb, &lb), (&xc, &lc)] {
            let out_ws = reused.train_batch_ws(x, labels, 0.1, &mut ws);
            let out_alloc = fresh.train_batch(x, labels, 0.1);
            assert_eq!(out_ws.loss.to_bits(), out_alloc.loss.to_bits());
            assert_eq!(out_ws.batch_size, out_alloc.batch_size);
        }
        assert_eq!(reused.to_flat(), fresh.to_flat());
    }

    #[test]
    fn workspace_steady_state_does_not_reallocate_matrices() {
        // After the first (largest) batch, repeated steps must reuse the
        // exact same backing buffers — the zero-allocation guarantee.
        let config = MlpConfig {
            num_features: 70,
            hidden: 24,
            num_classes: 36,
        };
        let (x, labels) = wide_batch(&config, 48, 5);
        let mut m = Mlp::init(&config, 9);
        let mut ws = crate::workspace::Workspace::new(&config);
        m.train_batch_ws(&x, &labels, 0.1, &mut ws);
        let ptrs = (
            ws.h.as_slice().as_ptr(),
            ws.probs.as_slice().as_ptr(),
            ws.dh.as_slice().as_ptr(),
            ws.w2t.as_slice().as_ptr(),
            ws.grads.w2.as_slice().as_ptr(),
        );
        let rows_cap = ws.grads.w1_updates.capacity();
        for _ in 0..3 {
            m.train_batch_ws(&x, &labels, 0.1, &mut ws);
        }
        assert_eq!(ptrs.0, ws.h.as_slice().as_ptr());
        assert_eq!(ptrs.1, ws.probs.as_slice().as_ptr());
        assert_eq!(ptrs.2, ws.dh.as_slice().as_ptr());
        assert_eq!(ptrs.3, ws.w2t.as_slice().as_ptr());
        assert_eq!(ptrs.4, ws.grads.w2.as_slice().as_ptr());
        assert_eq!(rows_cap, ws.grads.w1_updates.capacity());
    }

    #[test]
    fn predict_topk_orders_by_probability_with_id_tiebreak() {
        let config = tiny_config();
        let m = Mlp::init(&config, 51);
        let (x, _) = tiny_batch();
        let (_, probs) = m.forward(&x);
        let top = m.predict_topk(&x, 4);
        assert_eq!(top.len(), 3 * 4);
        for r in 0..3 {
            let row = probs.row(r);
            let ids = &top[r * 4..(r + 1) * 4];
            // Row covers all classes exactly once (k == num_classes)...
            let mut sorted = ids.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
            // ...in non-increasing probability order.
            for w in ids.windows(2) {
                let (pa, pb) = (row[w[0] as usize], row[w[1] as usize]);
                assert!(pa > pb || (pa == pb && w[0] < w[1]));
            }
        }
    }

    #[test]
    fn predict_topk_ws_reuse_is_bit_identical_to_fresh() {
        let config = MlpConfig {
            num_features: 70,
            hidden: 24,
            num_classes: 36,
        };
        let m = Mlp::init(&config, 52);
        let (xa, _) = wide_batch(&config, 48, 5);
        let (xb, _) = wide_batch(&config, 32, 6); // shrink path
        let (xc, _) = wide_batch(&config, 48, 7); // regrow path
        let mut ws = Workspace::new(&config);
        let mut out = Vec::new();
        for x in [&xa, &xb, &xc] {
            let k_eff = m.predict_topk_ws(x, 5, &mut ws, &mut out);
            assert_eq!(k_eff, 5);
            assert_eq!(out, m.predict_topk(x, 5), "stale workspace leaked");
        }
        // A workspace that already trained serves predictions unchanged.
        let mut trained_ws = Workspace::new(&config);
        let mut m2 = m.clone();
        let (xt, lt) = wide_batch(&config, 48, 8);
        m2.train_batch_ws(&xt, &lt, 0.1, &mut trained_ws);
        m2.predict_topk_ws(&xa, 5, &mut trained_ws, &mut out);
        assert_eq!(out, m2.predict_topk(&xa, 5));
    }

    #[test]
    fn predict_topk_steady_state_does_not_reallocate() {
        let config = MlpConfig {
            num_features: 70,
            hidden: 24,
            num_classes: 36,
        };
        let m = Mlp::init(&config, 53);
        let (x, _) = wide_batch(&config, 48, 9);
        let mut ws = Workspace::new(&config);
        let mut out = Vec::new();
        m.predict_topk_ws(&x, 5, &mut ws, &mut out);
        let ptrs = (
            ws.h.as_slice().as_ptr(),
            ws.probs.as_slice().as_ptr(),
            ws.order.as_ptr(),
            out.as_ptr(),
        );
        for _ in 0..3 {
            m.predict_topk_ws(&x, 5, &mut ws, &mut out);
        }
        assert_eq!(ptrs.0, ws.h.as_slice().as_ptr());
        assert_eq!(ptrs.1, ws.probs.as_slice().as_ptr());
        assert_eq!(ptrs.2, ws.order.as_ptr());
        assert_eq!(ptrs.3, out.as_ptr());
    }

    #[test]
    fn predict_topk_streaming_and_fallback_paths_agree() {
        // k ≤ TOPK_STREAM_MAX runs the fused streaming kernel; larger k
        // materializes logits and partial-sorts. Both apply the same
        // (score desc, id asc) total order, so the fallback's prefix must
        // equal the streaming result exactly.
        let config = MlpConfig {
            num_features: 80,
            hidden: 32,
            num_classes: 48,
        };
        let m = Mlp::init(&config, 56);
        let (x, _) = wide_batch(&config, 20, 18);
        let kmax = asgd_tensor::ops::TOPK_STREAM_MAX;
        let stream = m.predict_topk(&x, kmax);
        let fallback = m.predict_topk(&x, kmax + 1);
        for r in 0..20 {
            assert_eq!(
                &stream[r * kmax..(r + 1) * kmax],
                &fallback[r * (kmax + 1)..r * (kmax + 1) + kmax],
                "row {r}"
            );
        }
    }

    #[test]
    fn predict_topk_bit_identical_across_thread_counts() {
        let config = MlpConfig {
            num_features: 80,
            hidden: 32,
            num_classes: 48,
        };
        let (x, _) = wide_batch(&config, 64, 17);
        let m = Mlp::init(&config, 54);
        asgd_tensor::parallel::override_threads(1);
        let single = m.predict_topk(&x, 5);
        asgd_tensor::parallel::override_threads(8);
        let eight = m.predict_topk(&x, 5);
        asgd_tensor::parallel::override_threads(0);
        assert_eq!(single, eight, "predictions diverged across thread counts");
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn predict_topk_rejects_zero_k() {
        let m = Mlp::init(&tiny_config(), 55);
        let (x, _) = tiny_batch();
        let _ = m.predict_topk(&x, 0);
    }

    /// Candidate set for sampled-path tests: the union of all batch labels
    /// plus a deterministic spread of negatives, sorted and deduplicated.
    fn cand_for(labels: &[Vec<u32>], config: &MlpConfig, extra_stride: usize) -> Vec<u32> {
        let mut cand: Vec<u32> = labels.iter().flat_map(|l| l.iter().copied()).collect();
        cand.extend(
            (0..config.num_classes)
                .step_by(extra_stride)
                .map(|c| c as u32),
        );
        cand.sort_unstable();
        cand.dedup();
        cand
    }

    #[test]
    fn sampled_batch_with_all_classes_tracks_dense_batch() {
        // With the candidate set covering every class, the sampled softmax
        // is the dense objective computed through the gathered kernels —
        // same real arithmetic, different rounding. Losses and parameters
        // must agree to float tolerance over several steps.
        let config = tiny_config();
        let mut dense = Mlp::init(&config, 61);
        let mut sampled = dense.clone();
        let (x, labels) = tiny_batch();
        let cand: Vec<u32> = (0..config.num_classes as u32).collect();
        let mut ws = Workspace::new(&config);
        for _ in 0..5 {
            let ld = dense.train_batch(&x, &labels, 0.2).loss;
            let ls = sampled
                .train_batch_sampled_ws(&x, &labels, &cand, 0.2, &mut ws)
                .loss;
            assert!((ld - ls).abs() < 1e-4, "loss diverged: {ld} vs {ls}");
        }
        let fd = dense.to_flat();
        let fs = sampled.to_flat();
        for (a, b) in fd.iter().zip(&fs) {
            assert!((a - b).abs() < 1e-3, "parameter diverged: {a} vs {b}");
        }
    }

    #[test]
    fn sampled_batch_touches_only_candidate_output_columns() {
        let config = tiny_config();
        let mut m = Mlp::init(&config, 62);
        let before_w2 = m.w2().clone();
        let before_b2 = m.b2().to_vec();
        let x = CsrMatrix::from_rows(10, &[(vec![0, 3], vec![1.0, 0.5])]).unwrap();
        let labels = vec![vec![1u32]];
        let mut ws = Workspace::new(&config);
        m.train_batch_sampled_ws(&x, &labels, &[1u32, 3], 0.3, &mut ws);
        for (c, &b2_before) in before_b2.iter().enumerate() {
            let changed = (0..config.hidden).any(|k| m.w2().at(k, c) != before_w2.at(k, c))
                || m.b2()[c] != b2_before;
            assert_eq!(changed, c == 1 || c == 3, "class {c}");
        }
    }

    #[test]
    #[should_panic(expected = "label missing from candidate set")]
    fn sampled_batch_requires_labels_in_candidates() {
        let config = tiny_config();
        let m = Mlp::init(&config, 63);
        let x = CsrMatrix::from_rows(10, &[(vec![0], vec![1.0])]).unwrap();
        let labels = vec![vec![2u32]];
        let mut ws = Workspace::new(&config);
        m.loss_and_gradients_sampled_ws(&x, &labels, &[0u32, 1], &mut ws);
    }

    #[test]
    fn sampled_train_bit_identical_across_thread_counts() {
        let config = MlpConfig {
            num_features: 80,
            hidden: 32,
            num_classes: 48,
        };
        let (x, labels) = wide_batch(&config, 64, 19);
        let cand = cand_for(&labels, &config, 5);
        let run = |threads: usize| {
            asgd_tensor::parallel::override_threads(threads);
            let mut m = Mlp::init(&config, 64);
            let mut ws = Workspace::new(&config);
            let mut losses = Vec::new();
            for _ in 0..3 {
                losses.push(
                    m.train_batch_sampled_ws(&x, &labels, &cand, 0.05, &mut ws)
                        .loss
                        .to_bits(),
                );
            }
            (m.to_flat(), losses)
        };
        let single = run(1);
        let eight = run(8);
        asgd_tensor::parallel::override_threads(0);
        assert_eq!(single.1, eight.1, "losses diverged");
        assert_eq!(single.0, eight.0, "parameters diverged");
    }

    #[test]
    fn sampled_workspace_reuse_is_bit_identical_to_fresh() {
        // The reused workspace keeps its W₂ᵀ cache coherent through the
        // sparse updates (never re-transposing); the fresh workspaces
        // re-transpose every step. Bit-identical results prove the cached
        // update writes exactly what a re-transpose would read back.
        let config = MlpConfig {
            num_features: 70,
            hidden: 24,
            num_classes: 36,
        };
        let batches = [
            wide_batch(&config, 48, 11),
            wide_batch(&config, 32, 12), // shrink path
            wide_batch(&config, 48, 13), // regrow path
        ];
        let mut reused = Mlp::init(&config, 14);
        let mut fresh = reused.clone();
        let mut ws = Workspace::new(&config);
        for (i, (x, labels)) in batches.iter().enumerate() {
            let cand = cand_for(labels, &config, 3 + i); // vary |cand| too
            let a = reused.train_batch_sampled_ws(x, labels, &cand, 0.1, &mut ws);
            let mut ws_fresh = Workspace::new(&config);
            let b = fresh.train_batch_sampled_ws(x, labels, &cand, 0.1, &mut ws_fresh);
            assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "batch {i}");
        }
        assert_eq!(reused.to_flat(), fresh.to_flat());

        // A wholesale W₂ mutation (model blend) must invalidate the cache:
        // the next step through the long-lived workspace still matches.
        let target = Mlp::init(&config, 15).to_flat();
        reused.blend_from_flat(&target, 0.5);
        fresh.blend_from_flat(&target, 0.5);
        let (x, labels) = &batches[0];
        let cand = cand_for(labels, &config, 3);
        let a = reused.train_batch_sampled_ws(x, labels, &cand, 0.1, &mut ws);
        let mut ws_fresh = Workspace::new(&config);
        let b = fresh.train_batch_sampled_ws(x, labels, &cand, 0.1, &mut ws_fresh);
        assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "post-blend step");
        assert_eq!(reused.to_flat(), fresh.to_flat());
    }

    #[test]
    fn sampled_steady_state_does_not_reallocate() {
        let config = MlpConfig {
            num_features: 70,
            hidden: 24,
            num_classes: 36,
        };
        let (x, labels) = wide_batch(&config, 48, 16);
        let cand = cand_for(&labels, &config, 4);
        let mut m = Mlp::init(&config, 17);
        let mut ws = Workspace::new(&config);
        m.train_batch_sampled_ws(&x, &labels, &cand, 0.1, &mut ws);
        let ptrs = (
            ws.h.as_slice().as_ptr(),
            ws.logits_s.as_slice().as_ptr(),
            ws.gt.as_slice().as_ptr(),
            ws.gathered_b2.as_ptr(),
            ws.b2_scratch.as_ptr(),
            ws.dh.as_slice().as_ptr(),
        );
        let caps = (
            ws.grads.w2_updates.capacity(),
            ws.grads.b2_updates.capacity(),
            ws.grads.w1_updates.capacity(),
        );
        for _ in 0..3 {
            m.train_batch_sampled_ws(&x, &labels, &cand, 0.1, &mut ws);
        }
        assert_eq!(ptrs.0, ws.h.as_slice().as_ptr());
        assert_eq!(ptrs.1, ws.logits_s.as_slice().as_ptr());
        assert_eq!(ptrs.2, ws.gt.as_slice().as_ptr());
        assert_eq!(ptrs.3, ws.gathered_b2.as_ptr());
        assert_eq!(ptrs.4, ws.b2_scratch.as_ptr());
        assert_eq!(ptrs.5, ws.dh.as_slice().as_ptr());
        assert_eq!(caps.0, ws.grads.w2_updates.capacity());
        assert_eq!(caps.1, ws.grads.b2_updates.capacity());
        assert_eq!(caps.2, ws.grads.w1_updates.capacity());
    }

    #[test]
    fn sampled_steps_skip_the_transpose_after_the_first_sync() {
        // The coherence contract in one observable: after a sampled step,
        // the workspace's cached W₂ᵀ must equal a fresh transpose of the
        // updated model, bit for bit, *without* calling sync again.
        let config = tiny_config();
        let mut m = Mlp::init(&config, 65);
        let (x, labels) = tiny_batch();
        let cand: Vec<u32> = (0..config.num_classes as u32).collect();
        let mut ws = Workspace::new(&config);
        m.train_batch_sampled_ws(&x, &labels, &cand, 0.2, &mut ws);
        assert_eq!(ws.w2t_epoch, Some(m.w2_epoch()), "cache marked stale");
        let mut expect = Matrix::zeros(config.num_classes, config.hidden);
        m.w2().transpose_into(&mut expect);
        assert_eq!(ws.w2t, expect, "cached W2ᵀ diverged from the model");
    }

    #[test]
    fn sparse_update_only_touches_batch_features() {
        let config = tiny_config();
        let mut m = Mlp::init(&config, 8);
        let before = m.w1.clone();
        let x = CsrMatrix::from_rows(10, &[(vec![2, 4], vec![1.0, 1.0])]).unwrap();
        m.train_batch(&x, &[vec![0]], 0.1);
        for f in 0..10usize {
            let changed = m.w1.row(f) != before.row(f);
            assert_eq!(changed, f == 2 || f == 4, "feature {f}");
        }
    }
}
