//! The 3-layer MLP for extreme multi-label classification.
//!
//! This is the model of the paper's evaluation (§V-A): sparse input →
//! fully-connected hidden layer with ReLU → fully-connected output layer
//! with softmax and (multi-label) cross-entropy loss — the same architecture
//! the SLIDE testbed uses on Amazon-670k and Delicious-200k, with weights
//! initialized from a normal distribution scaled by the layer's unit count.
//!
//! * [`Mlp`] — parameters and the real forward/backward/update math.
//! * [`workspace::Workspace`] — reusable training buffers; with one of
//!   these, steady-state `train_batch_ws` steps allocate nothing.
//! * [`gradients::Gradients`] — gradient buffers shaped like the model.
//! * [`eval`] — top-1 accuracy and precision@k on held-out data.
//! * [`workload`] — the [`asgd_gpusim::KernelKind`] sequence an epoch
//!   charges to its simulated device (this is where nnz-dependent timing
//!   heterogeneity enters).
//! * [`checkpoint`] — binary serialization (`bytes`-based) so every
//!   algorithm starts from an identical model.
//!
//! # Example
//!
//! ```
//! use asgd_model::{Mlp, MlpConfig};
//! use asgd_sparse::CsrMatrix;
//!
//! let config = MlpConfig { num_features: 8, hidden: 4, num_classes: 3 };
//! let mut model = Mlp::init(&config, 42);
//! let x = CsrMatrix::from_rows(8, &[(vec![1, 5], vec![1.0, 0.5])]).unwrap();
//! let labels = vec![vec![2u32]];
//! let loss0 = model.train_batch(&x, &labels, 0.5).loss;
//! let loss1 = model.train_batch(&x, &labels, 0.5).loss;
//! assert!(loss1 < loss0, "one SGD step must reduce loss on the same batch");
//! ```

pub mod adam;
pub mod checkpoint;
pub mod eval;
pub mod gradients;
pub mod mlp;
pub mod workload;
pub mod workspace;

pub use adam::{train_batch_adam, AdamParams, AdamState};
pub use gradients::Gradients;
pub use mlp::{Mlp, MlpConfig, TrainOutput};
pub use workspace::Workspace;
