//! Adam optimizer state (Kingma & Ba) for the MLP.
//!
//! The original SLIDE system trains with Adam rather than plain SGD; this
//! module provides the optimizer as an extension so the CPU baseline (and
//! ablations) can match. First/second-moment state is kept *densely* for
//! `W₂`/biases and *lazily per-feature* for `W₁` — sparse rows that were
//! never touched carry no state, which keeps memory proportional to the
//! features actually seen, as SLIDE does.

use crate::gradients::Gradients;
use crate::mlp::{Mlp, MlpConfig};
use asgd_tensor::Matrix;
use std::collections::HashMap;

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamParams {
    /// Step size `α`.
    pub lr: f64,
    /// First-moment decay `β₁`.
    pub beta1: f64,
    /// Second-moment decay `β₂`.
    pub beta2: f64,
    /// Numerical floor `ε`.
    pub eps: f64,
}

impl Default for AdamParams {
    fn default() -> Self {
        AdamParams {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Per-parameter first/second moment state.
#[derive(Debug, Clone)]
pub struct AdamState {
    params: AdamParams,
    step: u64,
    // Dense moments for W2 / b1 / b2.
    m_w2: Matrix,
    v_w2: Matrix,
    m_b1: Vec<f32>,
    v_b1: Vec<f32>,
    m_b2: Vec<f32>,
    v_b2: Vec<f32>,
    // Lazy per-feature moments for W1 rows.
    w1_moments: HashMap<u32, (Vec<f32>, Vec<f32>)>,
    // Lazy per-class moments for W2 columns (sampled-softmax path) —
    // classes never selected as candidates carry no state, mirroring the
    // W1 scheme. The dense `m_w2`/`v_w2` and these are mutually exclusive
    // within a run (one optimizer drives one training mode).
    w2_col_moments: HashMap<u32, (Vec<f32>, Vec<f32>)>,
    hidden: usize,
}

impl AdamState {
    /// Fresh state for an architecture.
    pub fn new(config: &MlpConfig, params: AdamParams) -> Self {
        AdamState {
            params,
            step: 0,
            m_w2: Matrix::zeros(config.hidden, config.num_classes),
            v_w2: Matrix::zeros(config.hidden, config.num_classes),
            m_b1: vec![0.0; config.hidden],
            v_b1: vec![0.0; config.hidden],
            m_b2: vec![0.0; config.num_classes],
            v_b2: vec![0.0; config.num_classes],
            w1_moments: HashMap::new(),
            w2_col_moments: HashMap::new(),
            hidden: config.hidden,
        }
    }

    /// Steps taken so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Number of W1 feature rows carrying moment state.
    pub fn touched_features(&self) -> usize {
        self.w1_moments.len()
    }

    /// Number of W2 class columns carrying sampled-path moment state.
    pub fn touched_classes(&self) -> usize {
        self.w2_col_moments.len()
    }

    /// Applies one Adam update to `model` from `grads`.
    pub fn apply(&mut self, model: &mut Mlp, grads: &Gradients) {
        self.step += 1;
        let p = self.params;
        let b1 = p.beta1 as f32;
        let b2 = p.beta2 as f32;
        // Bias-corrected step size (the standard reformulation).
        let bc1 = 1.0 - (p.beta1).powi(self.step as i32);
        let bc2 = 1.0 - (p.beta2).powi(self.step as i32);
        let alpha = (p.lr * bc2.sqrt() / bc1) as f32;
        let eps = p.eps as f32;

        let update = |w: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32]| {
            for i in 0..w.len() {
                m[i] = b1 * m[i] + (1.0 - b1) * g[i];
                v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
                w[i] -= alpha * m[i] / (v[i].sqrt() + eps);
            }
        };

        // Sparse W1 rows.
        for (feature, grow) in &grads.w1_updates {
            let (m, v) = self
                .w1_moments
                .entry(*feature)
                .or_insert_with(|| (vec![0.0; self.hidden], vec![0.0; self.hidden]));
            let wrow = model.w1_row_mut(*feature as usize);
            update(wrow, grow, m, v);
        }
        // Dense pieces.
        update(model.b1_mut(), &grads.b1, &mut self.m_b1, &mut self.v_b1);
        let (w2, m_w2, v_w2) = (
            model.w2_mut().as_mut_slice(),
            self.m_w2.as_mut_slice(),
            self.v_w2.as_mut_slice(),
        );
        update(w2, grads.w2.as_slice(), m_w2, v_w2);
        update(model.b2_mut(), &grads.b2, &mut self.m_b2, &mut self.v_b2);
    }

    /// Applies one Adam update from *sampled* gradients
    /// ([`Mlp::loss_and_gradients_sampled_ws`]): `W₁`/`b₁` exactly as
    /// [`AdamState::apply`]; the output layer as a sparse update over
    /// `grads.w2_updates` / `grads.b2_updates`, with first/second moments
    /// materialized lazily per touched class. The touched `W₂` columns and
    /// the workspace's cached `W₂ᵀ` rows are written coherently from one
    /// computed value, so the cache stays valid without a re-transpose.
    ///
    /// On a candidate set covering a class's entire gradient support, the
    /// per-element math is identical to the dense [`AdamState::apply`]
    /// (untouched entries update their zero moments to zero and step by
    /// exactly 0.0), so covered columns evolve bit-identically.
    ///
    /// # Panics
    /// Panics when `ws`'s cached `W₂ᵀ` is stale — sync it against `model`
    /// first (the sampled forward does; [`Mlp::sync_w2t`] does standalone).
    pub fn apply_sampled(&mut self, model: &mut Mlp, grads: &Gradients, ws: &mut crate::Workspace) {
        self.step += 1;
        let p = self.params;
        let b1 = p.beta1 as f32;
        let b2 = p.beta2 as f32;
        let bc1 = 1.0 - (p.beta1).powi(self.step as i32);
        let bc2 = 1.0 - (p.beta2).powi(self.step as i32);
        let alpha = (p.lr * bc2.sqrt() / bc1) as f32;
        let eps = p.eps as f32;

        let update = |w: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32]| {
            for i in 0..w.len() {
                m[i] = b1 * m[i] + (1.0 - b1) * g[i];
                v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
                w[i] -= alpha * m[i] / (v[i].sqrt() + eps);
            }
        };

        for (feature, grow) in &grads.w1_updates {
            let (m, v) = self
                .w1_moments
                .entry(*feature)
                .or_insert_with(|| (vec![0.0; self.hidden], vec![0.0; self.hidden]));
            let wrow = model.w1_row_mut(*feature as usize);
            update(wrow, grow, m, v);
        }
        update(model.b1_mut(), &grads.b1, &mut self.m_b1, &mut self.v_b1);

        let classes = model.config().num_classes;
        let hidden = self.hidden;
        model.sync_w2t(ws); // makes staleness impossible
        {
            let w2 = model.w2_mut().as_mut_slice();
            for (class, grow) in &grads.w2_updates {
                let (m, v) = self
                    .w2_col_moments
                    .entry(*class)
                    .or_insert_with(|| (vec![0.0; hidden], vec![0.0; hidden]));
                let c = *class as usize;
                let trow = ws.w2t.row_mut(c);
                for k in 0..hidden {
                    let g = grow[k];
                    m[k] = b1 * m[k] + (1.0 - b1) * g;
                    v[k] = b2 * v[k] + (1.0 - b2) * g * g;
                    let nv = trow[k] - alpha * m[k] / (v[k].sqrt() + eps);
                    trow[k] = nv;
                    w2[k * classes + c] = nv;
                }
            }
        }
        for &(c, g) in &grads.b2_updates {
            let c = c as usize;
            self.m_b2[c] = b1 * self.m_b2[c] + (1.0 - b1) * g;
            self.v_b2[c] = b2 * self.v_b2[c] + (1.0 - b2) * g * g;
            model.b2_mut()[c] -= alpha * self.m_b2[c] / (self.v_b2[c].sqrt() + eps);
        }
        ws.w2t_epoch = Some(model.w2_epoch());
    }
}

/// One Adam training step on a batch: forward + backward + Adam update.
/// Returns the loss (mirror of [`Mlp::train_batch`]).
pub fn train_batch_adam(
    model: &mut Mlp,
    state: &mut AdamState,
    x: &asgd_sparse::CsrMatrix,
    labels: &[Vec<u32>],
) -> f64 {
    let mut grads = Gradients::new(model.config());
    let loss = model.loss_and_gradients(x, labels, &mut grads);
    state.apply(model, &grads);
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_sparse::CsrMatrix;

    fn config() -> MlpConfig {
        MlpConfig {
            num_features: 10,
            hidden: 6,
            num_classes: 4,
        }
    }

    fn batch() -> (CsrMatrix, Vec<Vec<u32>>) {
        let x = CsrMatrix::from_rows(
            10,
            &[
                (vec![0, 3, 7], vec![1.0, 0.5, 2.0]),
                (vec![2, 3], vec![1.5, -0.5]),
            ],
        )
        .unwrap();
        (x, vec![vec![0], vec![1, 3]])
    }

    #[test]
    fn adam_reduces_loss_on_fixed_batch() {
        let mut model = Mlp::init(&config(), 5);
        let mut adam = AdamState::new(
            &config(),
            AdamParams {
                lr: 0.05,
                ..AdamParams::default()
            },
        );
        let (x, labels) = batch();
        let first = train_batch_adam(&mut model, &mut adam, &x, &labels);
        let mut last = first;
        for _ in 0..100 {
            last = train_batch_adam(&mut model, &mut adam, &x, &labels);
        }
        assert!(last < first * 0.5, "{first} -> {last}");
        assert_eq!(adam.step_count(), 101);
    }

    #[test]
    fn lazy_w1_state_only_for_touched_features() {
        let mut model = Mlp::init(&config(), 6);
        let mut adam = AdamState::new(&config(), AdamParams::default());
        let (x, labels) = batch();
        train_batch_adam(&mut model, &mut adam, &x, &labels);
        // Features 0, 2, 3, 7 appear in the batch.
        assert_eq!(adam.touched_features(), 4);
    }

    #[test]
    fn adam_converges_faster_than_sgd_on_ill_scaled_problem() {
        // Feature 9 has a 100x larger input value: plain SGD with a safe lr
        // crawls on the small-scale directions while Adam's per-parameter
        // scaling adapts. Compare loss after equal steps.
        let x = CsrMatrix::from_rows(
            10,
            &[
                (vec![0, 9], vec![0.01, 100.0]),
                (vec![1, 9], vec![0.01, 100.0]),
            ],
        )
        .unwrap();
        let labels = vec![vec![0u32], vec![1]];
        let mut sgd_model = Mlp::init(&config(), 7);
        let mut adam_model = sgd_model.clone();
        let mut adam = AdamState::new(
            &config(),
            AdamParams {
                lr: 0.05,
                ..AdamParams::default()
            },
        );
        // Safe SGD lr for the 100x feature (lr bigger than ~1e-4 diverges).
        let mut sgd_loss = 0.0;
        let mut adam_loss = 0.0;
        for _ in 0..60 {
            sgd_loss = sgd_model.train_batch(&x, &labels, 1e-4).loss;
            adam_loss = train_batch_adam(&mut adam_model, &mut adam, &x, &labels);
        }
        assert!(
            adam_loss < sgd_loss,
            "adam {adam_loss} should beat sgd {sgd_loss} here"
        );
    }

    #[test]
    fn sampled_adam_with_covering_candidates_matches_dense_adam_exactly() {
        // A sampled gradient whose candidate set covers every class is the
        // same update as the dense one — per element, the identical formula
        // on identical bits — so the models must end bit-equal.
        let config = config();
        let (x, labels) = batch();
        let mut dense_model = Mlp::init(&config, 9);
        let mut sampled_model = dense_model.clone();
        let mut dense_adam = AdamState::new(&config, AdamParams::default());
        let mut sampled_adam = AdamState::new(&config, AdamParams::default());
        let mut grads = Gradients::new(&config);
        dense_model.loss_and_gradients(&x, &labels, &mut grads);
        // Re-express the dense output-layer gradient sparsely.
        let mut sgrads = grads.clone();
        sgrads.w2_updates = (0..config.num_classes)
            .map(|c| {
                let col: Vec<f32> = (0..config.hidden).map(|k| grads.w2.at(k, c)).collect();
                (c as u32, col)
            })
            .collect();
        sgrads.b2_updates = grads
            .b2
            .iter()
            .enumerate()
            .map(|(c, &g)| (c as u32, g))
            .collect();
        sgrads.w2.fill(0.0);
        sgrads.b2.fill(0.0);
        let mut ws = crate::Workspace::new(&config);
        for _ in 0..3 {
            dense_adam.apply(&mut dense_model, &grads);
            sampled_adam.apply_sampled(&mut sampled_model, &sgrads, &mut ws);
        }
        assert_eq!(dense_model.to_flat(), sampled_model.to_flat());
        assert_eq!(sampled_adam.touched_classes(), config.num_classes);
    }

    #[test]
    fn lazy_w2_state_only_for_touched_classes() {
        let config = config();
        let mut model = Mlp::init(&config, 10);
        let mut adam = AdamState::new(&config, AdamParams::default());
        let mut grads = Gradients::new(&config);
        grads.w2_updates = vec![
            (1, vec![0.5; config.hidden]),
            (3, vec![-0.5; config.hidden]),
        ];
        grads.b2_updates = vec![(1, 0.25), (3, -0.25)];
        let mut ws = crate::Workspace::new(&config);
        let before = model.clone();
        adam.apply_sampled(&mut model, &grads, &mut ws);
        assert_eq!(adam.touched_classes(), 2);
        // Untouched columns keep their bits.
        for c in 0..config.num_classes {
            let changed = (0..config.hidden).any(|k| model.w2().at(k, c) != before.w2().at(k, c))
                || model.b2()[c] != before.b2()[c];
            assert_eq!(changed, c == 1 || c == 3, "class {c}");
        }
    }

    #[test]
    fn moments_shrink_effective_step_over_time_for_constant_gradient() {
        // With a constant gradient, Adam's step magnitude approaches lr.
        let mut model = Mlp::zeros(&config());
        let mut adam = AdamState::new(&config(), AdamParams::default());
        let mut grads = Gradients::new(&config());
        grads.b2 = vec![1.0; 4];
        let before = model.b2()[0];
        adam.apply(&mut model, &grads);
        let first_step = (model.b2()[0] - before).abs();
        for _ in 0..50 {
            adam.apply(&mut model, &grads);
        }
        let b_prev = model.b2()[0];
        adam.apply(&mut model, &grads);
        let late_step = (model.b2()[0] - b_prev).abs();
        // Steps settle near lr (1e-3) and are finite/stable.
        assert!(first_step > 0.0 && late_step > 0.0);
        assert!((late_step - 1e-3).abs() < 2e-4, "late step {late_step}");
    }
}
