//! Adam optimizer state (Kingma & Ba) for the MLP.
//!
//! The original SLIDE system trains with Adam rather than plain SGD; this
//! module provides the optimizer as an extension so the CPU baseline (and
//! ablations) can match. First/second-moment state is kept *densely* for
//! `W₂`/biases and *lazily per-feature* for `W₁` — sparse rows that were
//! never touched carry no state, which keeps memory proportional to the
//! features actually seen, as SLIDE does.

use crate::gradients::Gradients;
use crate::mlp::{Mlp, MlpConfig};
use asgd_tensor::Matrix;
use std::collections::HashMap;

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamParams {
    /// Step size `α`.
    pub lr: f64,
    /// First-moment decay `β₁`.
    pub beta1: f64,
    /// Second-moment decay `β₂`.
    pub beta2: f64,
    /// Numerical floor `ε`.
    pub eps: f64,
}

impl Default for AdamParams {
    fn default() -> Self {
        AdamParams {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Per-parameter first/second moment state.
#[derive(Debug, Clone)]
pub struct AdamState {
    params: AdamParams,
    step: u64,
    // Dense moments for W2 / b1 / b2.
    m_w2: Matrix,
    v_w2: Matrix,
    m_b1: Vec<f32>,
    v_b1: Vec<f32>,
    m_b2: Vec<f32>,
    v_b2: Vec<f32>,
    // Lazy per-feature moments for W1 rows.
    w1_moments: HashMap<u32, (Vec<f32>, Vec<f32>)>,
    hidden: usize,
}

impl AdamState {
    /// Fresh state for an architecture.
    pub fn new(config: &MlpConfig, params: AdamParams) -> Self {
        AdamState {
            params,
            step: 0,
            m_w2: Matrix::zeros(config.hidden, config.num_classes),
            v_w2: Matrix::zeros(config.hidden, config.num_classes),
            m_b1: vec![0.0; config.hidden],
            v_b1: vec![0.0; config.hidden],
            m_b2: vec![0.0; config.num_classes],
            v_b2: vec![0.0; config.num_classes],
            w1_moments: HashMap::new(),
            hidden: config.hidden,
        }
    }

    /// Steps taken so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Number of W1 feature rows carrying moment state.
    pub fn touched_features(&self) -> usize {
        self.w1_moments.len()
    }

    /// Applies one Adam update to `model` from `grads`.
    pub fn apply(&mut self, model: &mut Mlp, grads: &Gradients) {
        self.step += 1;
        let p = self.params;
        let b1 = p.beta1 as f32;
        let b2 = p.beta2 as f32;
        // Bias-corrected step size (the standard reformulation).
        let bc1 = 1.0 - (p.beta1).powi(self.step as i32);
        let bc2 = 1.0 - (p.beta2).powi(self.step as i32);
        let alpha = (p.lr * bc2.sqrt() / bc1) as f32;
        let eps = p.eps as f32;

        let update = |w: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32]| {
            for i in 0..w.len() {
                m[i] = b1 * m[i] + (1.0 - b1) * g[i];
                v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
                w[i] -= alpha * m[i] / (v[i].sqrt() + eps);
            }
        };

        // Sparse W1 rows.
        for (feature, grow) in &grads.w1_updates {
            let (m, v) = self
                .w1_moments
                .entry(*feature)
                .or_insert_with(|| (vec![0.0; self.hidden], vec![0.0; self.hidden]));
            let wrow = model.w1_row_mut(*feature as usize);
            update(wrow, grow, m, v);
        }
        // Dense pieces.
        update(model.b1_mut(), &grads.b1, &mut self.m_b1, &mut self.v_b1);
        let (w2, m_w2, v_w2) = (
            model.w2_mut().as_mut_slice(),
            self.m_w2.as_mut_slice(),
            self.v_w2.as_mut_slice(),
        );
        update(w2, grads.w2.as_slice(), m_w2, v_w2);
        update(model.b2_mut(), &grads.b2, &mut self.m_b2, &mut self.v_b2);
    }
}

/// One Adam training step on a batch: forward + backward + Adam update.
/// Returns the loss (mirror of [`Mlp::train_batch`]).
pub fn train_batch_adam(
    model: &mut Mlp,
    state: &mut AdamState,
    x: &asgd_sparse::CsrMatrix,
    labels: &[Vec<u32>],
) -> f64 {
    let mut grads = Gradients::new(model.config());
    let loss = model.loss_and_gradients(x, labels, &mut grads);
    state.apply(model, &grads);
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_sparse::CsrMatrix;

    fn config() -> MlpConfig {
        MlpConfig {
            num_features: 10,
            hidden: 6,
            num_classes: 4,
        }
    }

    fn batch() -> (CsrMatrix, Vec<Vec<u32>>) {
        let x = CsrMatrix::from_rows(
            10,
            &[
                (vec![0, 3, 7], vec![1.0, 0.5, 2.0]),
                (vec![2, 3], vec![1.5, -0.5]),
            ],
        )
        .unwrap();
        (x, vec![vec![0], vec![1, 3]])
    }

    #[test]
    fn adam_reduces_loss_on_fixed_batch() {
        let mut model = Mlp::init(&config(), 5);
        let mut adam = AdamState::new(
            &config(),
            AdamParams {
                lr: 0.05,
                ..AdamParams::default()
            },
        );
        let (x, labels) = batch();
        let first = train_batch_adam(&mut model, &mut adam, &x, &labels);
        let mut last = first;
        for _ in 0..100 {
            last = train_batch_adam(&mut model, &mut adam, &x, &labels);
        }
        assert!(last < first * 0.5, "{first} -> {last}");
        assert_eq!(adam.step_count(), 101);
    }

    #[test]
    fn lazy_w1_state_only_for_touched_features() {
        let mut model = Mlp::init(&config(), 6);
        let mut adam = AdamState::new(&config(), AdamParams::default());
        let (x, labels) = batch();
        train_batch_adam(&mut model, &mut adam, &x, &labels);
        // Features 0, 2, 3, 7 appear in the batch.
        assert_eq!(adam.touched_features(), 4);
    }

    #[test]
    fn adam_converges_faster_than_sgd_on_ill_scaled_problem() {
        // Feature 9 has a 100x larger input value: plain SGD with a safe lr
        // crawls on the small-scale directions while Adam's per-parameter
        // scaling adapts. Compare loss after equal steps.
        let x = CsrMatrix::from_rows(
            10,
            &[
                (vec![0, 9], vec![0.01, 100.0]),
                (vec![1, 9], vec![0.01, 100.0]),
            ],
        )
        .unwrap();
        let labels = vec![vec![0u32], vec![1]];
        let mut sgd_model = Mlp::init(&config(), 7);
        let mut adam_model = sgd_model.clone();
        let mut adam = AdamState::new(
            &config(),
            AdamParams {
                lr: 0.05,
                ..AdamParams::default()
            },
        );
        // Safe SGD lr for the 100x feature (lr bigger than ~1e-4 diverges).
        let mut sgd_loss = 0.0;
        let mut adam_loss = 0.0;
        for _ in 0..60 {
            sgd_loss = sgd_model.train_batch(&x, &labels, 1e-4).loss;
            adam_loss = train_batch_adam(&mut adam_model, &mut adam, &x, &labels);
        }
        assert!(
            adam_loss < sgd_loss,
            "adam {adam_loss} should beat sgd {sgd_loss} here"
        );
    }

    #[test]
    fn moments_shrink_effective_step_over_time_for_constant_gradient() {
        // With a constant gradient, Adam's step magnitude approaches lr.
        let mut model = Mlp::zeros(&config());
        let mut adam = AdamState::new(&config(), AdamParams::default());
        let mut grads = Gradients::new(&config());
        grads.b2 = vec![1.0; 4];
        let before = model.b2()[0];
        adam.apply(&mut model, &grads);
        let first_step = (model.b2()[0] - before).abs();
        for _ in 0..50 {
            adam.apply(&mut model, &grads);
        }
        let b_prev = model.b2()[0];
        adam.apply(&mut model, &grads);
        let late_step = (model.b2()[0] - b_prev).abs();
        // Steps settle near lr (1e-3) and are finite/stable.
        assert!(first_step > 0.0 && late_step > 0.0);
        assert!((late_step - 1e-3).abs() < 2e-4, "late step {late_step}");
    }
}
