//! Held-out evaluation: top-1 accuracy and precision@k.

use crate::mlp::Mlp;
use crate::workspace::Workspace;
use asgd_sparse::CsrMatrix;

/// Top-1 accuracy on multi-label data: the fraction of samples whose highest-
/// scored predicted class is in the sample's label set (the metric of the
/// paper's Figures 4 and 5). Samples without labels are skipped.
///
/// Runs through the fused [`Mlp::predict_topk_ws`] path with `k = 1` — the
/// same streaming logits→top-k kernel serving uses, so eval never
/// materializes the `chunk × num_classes` probability matrix. The `(score
/// desc, id asc)` tie rule of that path is exactly `argmax`'s first-max
/// convention, and softmax is monotone, so the prediction is identical to
/// the old argmax-over-probabilities formulation.
///
/// Evaluation runs in chunks of `chunk` rows to bound the dense activation
/// memory.
pub fn top1_accuracy(model: &Mlp, x: &CsrMatrix, labels: &[Vec<u32>], chunk: usize) -> f64 {
    assert_eq!(x.rows(), labels.len(), "labels/batch mismatch");
    let chunk = chunk.max(1);
    let mut ws = Workspace::new(model.config());
    let mut top1: Vec<u32> = Vec::new();
    let mut ids: Vec<usize> = Vec::new();
    let mut correct = 0usize;
    let mut counted = 0usize;
    let mut start = 0usize;
    while start < x.rows() {
        let end = (start + chunk).min(x.rows());
        ids.clear();
        ids.extend(start..end);
        let part = x.select_rows(&ids);
        model.predict_topk_ws(&part, 1, &mut ws, &mut top1);
        for (r, labs) in labels[start..end].iter().enumerate() {
            if labs.is_empty() {
                continue;
            }
            counted += 1;
            if labs.binary_search(&top1[r]).is_ok() {
                correct += 1;
            }
        }
        start = end;
    }
    if counted == 0 {
        0.0
    } else {
        correct as f64 / counted as f64
    }
}

/// Precision@k: mean over samples of `|top-k predictions ∩ labels| / k`.
///
/// Runs on the batched, workspace-reusing [`Mlp::predict_topk_ws`] path —
/// one workspace and one prediction buffer serve every chunk, so the
/// per-batch activation and per-row selection allocations of the naive
/// formulation are gone (the same path the serving engine uses).
pub fn precision_at_k(
    model: &Mlp,
    x: &CsrMatrix,
    labels: &[Vec<u32>],
    k: usize,
    chunk: usize,
) -> f64 {
    assert_eq!(x.rows(), labels.len(), "labels/batch mismatch");
    assert!(k >= 1, "k must be at least 1");
    let chunk = chunk.max(1);
    let mut ws = Workspace::new(model.config());
    let mut topk: Vec<u32> = Vec::new();
    let mut ids: Vec<usize> = Vec::new();
    let mut total = 0.0f64;
    let mut counted = 0usize;
    let mut start = 0usize;
    while start < x.rows() {
        let end = (start + chunk).min(x.rows());
        ids.clear();
        ids.extend(start..end);
        let part = x.select_rows(&ids);
        let k_eff = model.predict_topk_ws(&part, k, &mut ws, &mut topk);
        for (r, labs) in labels[start..end].iter().enumerate() {
            if labs.is_empty() {
                continue;
            }
            counted += 1;
            let hits = topk[r * k_eff..(r + 1) * k_eff]
                .iter()
                .filter(|&&c| labs.binary_search(&c).is_ok())
                .count();
            total += hits as f64 / k as f64;
        }
        start = end;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::MlpConfig;

    fn fixture() -> (Mlp, CsrMatrix, Vec<Vec<u32>>) {
        let config = MlpConfig {
            num_features: 4,
            hidden: 3,
            num_classes: 3,
        };
        let mut model = Mlp::init(&config, 9);
        // One-hot inputs; train feature i -> class i mapping hard.
        let x = CsrMatrix::from_rows(
            4,
            &[
                (vec![0], vec![1.0]),
                (vec![1], vec![1.0]),
                (vec![2], vec![1.0]),
            ],
        )
        .unwrap();
        let labels = vec![vec![0u32], vec![1], vec![2]];
        for _ in 0..300 {
            model.train_batch(&x, &labels, 0.5);
        }
        (model, x, labels)
    }

    #[test]
    fn trained_model_reaches_full_accuracy() {
        let (model, x, labels) = fixture();
        assert_eq!(top1_accuracy(&model, &x, &labels, 64), 1.0);
    }

    #[test]
    fn chunked_eval_matches_unchunked() {
        let (model, x, labels) = fixture();
        let whole = top1_accuracy(&model, &x, &labels, 100);
        let chunked = top1_accuracy(&model, &x, &labels, 1);
        assert_eq!(whole, chunked);
    }

    #[test]
    fn label_free_samples_are_skipped() {
        let (model, x, _) = fixture();
        let labels = vec![vec![0u32], vec![], vec![2]];
        // Only samples 0 and 2 are counted; both are predicted correctly.
        assert_eq!(top1_accuracy(&model, &x, &labels, 64), 1.0);
    }

    #[test]
    fn all_label_free_gives_zero() {
        let (model, x, _) = fixture();
        let labels = vec![vec![], vec![], vec![]];
        assert_eq!(top1_accuracy(&model, &x, &labels, 64), 0.0);
    }

    #[test]
    fn precision_at_one_equals_top1() {
        let (model, x, labels) = fixture();
        let p1 = precision_at_k(&model, &x, &labels, 1, 64);
        let t1 = top1_accuracy(&model, &x, &labels, 64);
        assert!((p1 - t1).abs() < 1e-12);
    }

    #[test]
    fn precision_at_k_large_k_caps() {
        let (model, x, labels) = fixture();
        // k = 3 with 1 relevant label each: precision = 1/3.
        let p3 = precision_at_k(&model, &x, &labels, 3, 64);
        assert!((p3 - 1.0 / 3.0).abs() < 1e-12);
    }
}
