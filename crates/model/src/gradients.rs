//! Gradient buffers shaped like the model.

use crate::mlp::MlpConfig;
use asgd_tensor::Matrix;

/// Gradients of one batch.
///
/// The input-layer gradient is stored *sparsely* as `(feature, row)` pairs —
/// for XML data only a few hundred of the hundreds of thousands of feature
/// rows are touched per batch, and both the update math and the simulated
/// kernel cost depend on that sparsity.
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    /// Sparse rows of `∇W₁ = Xᵀ·dh`, sorted by feature id.
    pub w1_updates: Vec<(u32, Vec<f32>)>,
    /// `∇b₁`.
    pub b1: Vec<f32>,
    /// `∇W₂` (dense path only; stays zero on the sampled path).
    pub w2: Matrix,
    /// `∇b₂` (dense path only; stays zero on the sampled path).
    pub b2: Vec<f32>,
    /// Sparse `∇W₂` of the sampled-softmax path as `(class, column)` pairs
    /// sorted by class id; each column gradient is laid out contiguously
    /// (length `hidden`, i.e. a `∇W₂ᵀ` row). Empty on the dense path —
    /// the two output-layer representations are mutually exclusive, and
    /// each backward pass clears the other's leftovers.
    pub w2_updates: Vec<(u32, Vec<f32>)>,
    /// Sparse `∇b₂` of the sampled-softmax path, `(class, grad)` sorted by
    /// class id. Empty on the dense path.
    pub b2_updates: Vec<(u32, f32)>,
}

impl Gradients {
    /// Zero gradients for an architecture.
    pub fn new(config: &MlpConfig) -> Self {
        Self {
            w1_updates: Vec::new(),
            b1: vec![0.0; config.hidden],
            w2: Matrix::zeros(config.hidden, config.num_classes),
            b2: vec![0.0; config.num_classes],
            w2_updates: Vec::new(),
            b2_updates: Vec::new(),
        }
    }

    /// A shapeless placeholder that allocates nothing — used to move
    /// gradients out of a workspace temporarily without paying for a
    /// class-sized dense buffer.
    pub(crate) fn hollow() -> Self {
        Self {
            w1_updates: Vec::new(),
            b1: Vec::new(),
            w2: Matrix::zeros(0, 0),
            b2: Vec::new(),
            w2_updates: Vec::new(),
            b2_updates: Vec::new(),
        }
    }

    /// Accumulates another gradient into this one (used by synchronous
    /// gradient aggregation): `self += other`.
    pub fn accumulate(&mut self, other: &Gradients) {
        merge_sparse_rows(&mut self.w1_updates, &other.w1_updates, 1.0);
        for (a, &b) in self.b1.iter_mut().zip(&other.b1) {
            *a += b;
        }
        for (a, &b) in self.w2.as_mut_slice().iter_mut().zip(other.w2.as_slice()) {
            *a += b;
        }
        for (a, &b) in self.b2.iter_mut().zip(&other.b2) {
            *a += b;
        }
        merge_sparse_rows(&mut self.w2_updates, &other.w2_updates, 1.0);
        merge_scalar_entries(&mut self.b2_updates, &other.b2_updates, 1.0);
    }

    /// Scales every gradient by `s` (averaging after aggregation).
    pub fn scale(&mut self, s: f32) {
        for (_, row) in &mut self.w1_updates {
            for v in row {
                *v *= s;
            }
        }
        for v in &mut self.b1 {
            *v *= s;
        }
        for v in self.w2.as_mut_slice() {
            *v *= s;
        }
        for v in &mut self.b2 {
            *v *= s;
        }
        for (_, row) in &mut self.w2_updates {
            for v in row {
                *v *= s;
            }
        }
        for (_, v) in &mut self.b2_updates {
            *v *= s;
        }
    }

    /// Squared L2 norm across all gradient entries.
    pub fn norm_sq(&self) -> f64 {
        let mut s: f64 = self
            .w1_updates
            .iter()
            .flat_map(|(_, row)| row.iter())
            .map(|&x| (x as f64).powi(2))
            .sum();
        s += self.b1.iter().map(|&x| (x as f64).powi(2)).sum::<f64>();
        s += self.w2.norm_sq();
        s += self.b2.iter().map(|&x| (x as f64).powi(2)).sum::<f64>();
        s += self
            .w2_updates
            .iter()
            .flat_map(|(_, row)| row.iter())
            .map(|&x| (x as f64).powi(2))
            .sum::<f64>();
        s += self
            .b2_updates
            .iter()
            .map(|&(_, x)| (x as f64).powi(2))
            .sum::<f64>();
        s
    }
}

/// Merges sorted `(id, value)` scalar entries of `src` into `dst`,
/// scaling src by `alpha` — the `b2_updates` counterpart of
/// [`merge_sparse_rows`].
fn merge_scalar_entries(dst: &mut Vec<(u32, f32)>, src: &[(u32, f32)], alpha: f32) {
    let mut out: Vec<(u32, f32)> = Vec::with_capacity(dst.len() + src.len());
    let mut i = 0;
    let mut j = 0;
    while i < dst.len() && j < src.len() {
        match dst[i].0.cmp(&src[j].0) {
            std::cmp::Ordering::Less => {
                out.push(dst[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push((src[j].0, alpha * src[j].1));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((dst[i].0, dst[i].1 + alpha * src[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&dst[i..]);
    out.extend(src[j..].iter().map(|&(c, v)| (c, alpha * v)));
    *dst = out;
}

/// Merges `src` (sorted by feature) into `dst` (sorted by feature),
/// scaling src rows by `alpha`.
fn merge_sparse_rows(dst: &mut Vec<(u32, Vec<f32>)>, src: &[(u32, Vec<f32>)], alpha: f32) {
    let mut out: Vec<(u32, Vec<f32>)> = Vec::with_capacity(dst.len() + src.len());
    let mut i = 0;
    let mut j = 0;
    while i < dst.len() && j < src.len() {
        match dst[i].0.cmp(&src[j].0) {
            std::cmp::Ordering::Less => {
                out.push(std::mem::take(&mut dst[i]));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                let (f, row) = &src[j];
                out.push((*f, row.iter().map(|&v| alpha * v).collect()));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let (f, mut row) = std::mem::take(&mut dst[i]);
                for (a, &b) in row.iter_mut().zip(&src[j].1) {
                    *a += alpha * b;
                }
                out.push((f, row));
                i += 1;
                j += 1;
            }
        }
    }
    for item in dst.drain(i..) {
        out.push(item);
    }
    for (f, row) in &src[j..] {
        out.push((*f, row.iter().map(|&v| alpha * v).collect()));
    }
    *dst = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MlpConfig {
        MlpConfig {
            num_features: 6,
            hidden: 2,
            num_classes: 3,
        }
    }

    #[test]
    fn accumulate_merges_sparse_rows() {
        let mut a = Gradients::new(&config());
        a.w1_updates = vec![(1, vec![1.0, 2.0]), (4, vec![3.0, 4.0])];
        let mut b = Gradients::new(&config());
        b.w1_updates = vec![(0, vec![0.5, 0.5]), (4, vec![1.0, 1.0])];
        b.b2 = vec![1.0, 2.0, 3.0];
        a.accumulate(&b);
        assert_eq!(
            a.w1_updates,
            vec![
                (0, vec![0.5, 0.5]),
                (1, vec![1.0, 2.0]),
                (4, vec![4.0, 5.0])
            ]
        );
        assert_eq!(a.b2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn scale_hits_all_buffers() {
        let mut g = Gradients::new(&config());
        g.w1_updates = vec![(2, vec![2.0, 4.0])];
        g.b1 = vec![1.0, 1.0];
        g.w2.fill(2.0);
        g.b2 = vec![3.0, 3.0, 3.0];
        g.scale(0.5);
        assert_eq!(g.w1_updates[0].1, vec![1.0, 2.0]);
        assert_eq!(g.b1, vec![0.5, 0.5]);
        assert!(g.w2.as_slice().iter().all(|&v| v == 1.0));
        assert_eq!(g.b2, vec![1.5, 1.5, 1.5]);
    }

    #[test]
    fn norm_sq_counts_everything() {
        let mut g = Gradients::new(&config());
        g.w1_updates = vec![(0, vec![3.0, 0.0])];
        g.b2[0] = 4.0;
        assert!((g.norm_sq() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn accumulate_merges_sampled_output_entries() {
        let mut a = Gradients::new(&config());
        a.w2_updates = vec![(1, vec![1.0, 2.0]), (3, vec![0.5, 0.5])];
        a.b2_updates = vec![(1, 1.0), (3, 2.0)];
        let mut b = Gradients::new(&config());
        b.w2_updates = vec![(0, vec![1.0, 1.0]), (3, vec![1.0, 1.0])];
        b.b2_updates = vec![(0, 0.5), (3, 1.0)];
        a.accumulate(&b);
        assert_eq!(
            a.w2_updates,
            vec![
                (0, vec![1.0, 1.0]),
                (1, vec![1.0, 2.0]),
                (3, vec![1.5, 1.5])
            ]
        );
        assert_eq!(a.b2_updates, vec![(0, 0.5), (1, 1.0), (3, 3.0)]);
    }

    #[test]
    fn scale_and_norm_cover_sampled_output_entries() {
        let mut g = Gradients::new(&config());
        g.w2_updates = vec![(2, vec![3.0, 0.0])];
        g.b2_updates = vec![(2, 4.0)];
        assert!((g.norm_sq() - 25.0).abs() < 1e-9);
        g.scale(0.5);
        assert_eq!(g.w2_updates[0].1, vec![1.5, 0.0]);
        assert_eq!(g.b2_updates, vec![(2, 2.0)]);
    }

    #[test]
    fn accumulate_into_empty() {
        let mut a = Gradients::new(&config());
        let mut b = Gradients::new(&config());
        b.w1_updates = vec![(5, vec![1.0, -1.0])];
        a.accumulate(&b);
        assert_eq!(a.w1_updates, b.w1_updates);
    }
}
