//! Dataset specifications mirroring Table I of the paper.

/// Generator parameters for one synthetic XML dataset.
///
/// The `amazon_670k`/`delicious_200k` constructors take a linear `scale`
/// applied to the corpus axes (features, labels, samples) while keeping the
/// *per-sample* statistics (avg features, avg labels) at their Table I
/// values — those are what the sparse kernels and the loss actually see.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name, e.g. `"amazon-670k@0.01"`.
    pub name: String,
    /// Feature dimensionality.
    pub num_features: usize,
    /// Label-space size.
    pub num_labels: usize,
    /// Training samples.
    pub train_samples: usize,
    /// Testing samples.
    pub test_samples: usize,
    /// Mean non-zero features per sample (Table I: 76 / 302).
    pub avg_features_per_sample: f64,
    /// Coefficient of variation of the per-sample nnz log-normal.
    pub nnz_cv: f64,
    /// Mean labels per sample (Table I: 5 / 75).
    pub avg_labels_per_sample: f64,
    /// Zipf exponent of feature popularity.
    pub feature_zipf_s: f64,
    /// Zipf exponent of label popularity.
    pub label_zipf_s: f64,
    /// Fraction of a sample's features drawn from the global (noise)
    /// distribution rather than its labels' prototypes.
    pub noise_fraction: f64,
    /// Features in each label's prototype pool.
    pub prototype_size: usize,
}

impl DatasetSpec {
    /// Synthetic twin of Amazon-670k (Table I row 1), at linear `scale`.
    ///
    /// Full scale: 135,909 features / 670,091 labels / 490,449 train /
    /// 153,025 test; 76 features and 5 labels per sample on average.
    pub fn amazon_670k(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        DatasetSpec {
            name: format!("amazon-670k@{scale}"),
            num_features: scaled(135_909, scale),
            num_labels: scaled(670_091, scale),
            train_samples: scaled(490_449, scale),
            test_samples: scaled(153_025, scale),
            avg_features_per_sample: 76.0,
            nnz_cv: 0.85,
            avg_labels_per_sample: 5.0,
            feature_zipf_s: 1.05,
            // Flatter than the feature popularity: at a scaled-down label
            // space, head-heavy label popularity would make the most popular
            // label present in ~half the samples and top-1 accuracy would
            // saturate; 0.7 restores a full-scale-like constant-predictor
            // base rate (~13%).
            label_zipf_s: 0.7,
            noise_fraction: 0.15,
            prototype_size: 40,
        }
    }

    /// Synthetic twin of Delicious-200k (Table I row 2), at linear `scale`.
    ///
    /// Full scale: 782,585 features / 205,443 labels / 196,606 train /
    /// 100,095 test; 302 features and 75 labels per sample on average.
    pub fn delicious_200k(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        DatasetSpec {
            name: format!("delicious-200k@{scale}"),
            num_features: scaled(782_585, scale),
            num_labels: scaled(205_443, scale),
            train_samples: scaled(196_606, scale),
            test_samples: scaled(100_095, scale),
            avg_features_per_sample: 302.0,
            nnz_cv: 0.6,
            avg_labels_per_sample: 75.0,
            feature_zipf_s: 1.02,
            // See amazon_670k: with 75 labels per sample the flattening must
            // be stronger to keep the base rate around 25-30%.
            label_zipf_s: 0.15,
            noise_fraction: 0.1,
            prototype_size: 32,
        }
    }

    /// A tiny spec for unit/integration tests (runs in milliseconds).
    pub fn tiny(name: &str) -> Self {
        DatasetSpec {
            name: name.to_string(),
            num_features: 200,
            num_labels: 40,
            train_samples: 400,
            test_samples: 120,
            avg_features_per_sample: 12.0,
            nnz_cv: 0.6,
            avg_labels_per_sample: 2.0,
            feature_zipf_s: 1.05,
            label_zipf_s: 1.05,
            noise_fraction: 0.2,
            prototype_size: 10,
        }
    }
}

fn scaled(full: usize, scale: f64) -> usize {
    ((full as f64 * scale).round() as usize).max(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table1() {
        let a = DatasetSpec::amazon_670k(1.0);
        assert_eq!(a.num_features, 135_909);
        assert_eq!(a.num_labels, 670_091);
        assert_eq!(a.train_samples, 490_449);
        assert_eq!(a.test_samples, 153_025);
        assert_eq!(a.avg_features_per_sample, 76.0);
        assert_eq!(a.avg_labels_per_sample, 5.0);

        let d = DatasetSpec::delicious_200k(1.0);
        assert_eq!(d.num_features, 782_585);
        assert_eq!(d.num_labels, 205_443);
        assert_eq!(d.avg_features_per_sample, 302.0);
        assert_eq!(d.avg_labels_per_sample, 75.0);
    }

    #[test]
    fn scaling_shrinks_axes_not_per_sample_stats() {
        let a = DatasetSpec::amazon_670k(0.01);
        assert_eq!(a.num_features, 1_359);
        assert_eq!(a.num_labels, 6_701);
        assert_eq!(a.avg_features_per_sample, 76.0);
        assert_eq!(a.avg_labels_per_sample, 5.0);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_panics() {
        let _ = DatasetSpec::amazon_670k(0.0);
    }
}
