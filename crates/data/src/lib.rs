//! Datasets for the Adaptive SGD reproduction.
//!
//! The paper evaluates on Amazon-670k and Delicious-200k from the Extreme
//! Classification repository. Those corpora are not redistributable here, so
//! this crate provides *synthetic statistical twins* (see `DESIGN.md` §2):
//! generators that match, at a configurable linear scale, the Table I
//! statistics that drive the algorithms' behaviour —
//!
//! * label-space size and Zipf-distributed label popularity,
//! * feature dimensionality and Zipf-distributed feature popularity,
//! * **log-normal per-sample non-zero counts** (the batch-to-batch variance
//!   that makes sparse kernels heterogeneous, §I),
//! * label-conditioned feature prototypes, so the data is genuinely
//!   learnable and accuracy curves have the paper's shape.
//!
//! Real XC data in libSVM format can be substituted via
//! [`asgd_sparse::libsvm`] and [`XmlDataset::from_libsvm`].
//!
//! Modules:
//!
//! * [`spec`] — dataset specifications ([`spec::DatasetSpec::amazon_670k`],
//!   [`spec::DatasetSpec::delicious_200k`]).
//! * [`synthetic`] — the generator.
//! * [`statistics`] — Table I statistics.
//! * [`batching`] — seeded shuffled sample streams and mega-batch
//!   accounting.

pub mod analysis;
pub mod batching;
pub mod spec;
pub mod statistics;
pub mod synthetic;

pub use analysis::{LabelProfile, NnzProfile};
pub use batching::SampleStream;
pub use spec::DatasetSpec;
pub use statistics::DatasetStats;
pub use synthetic::{generate, SplitData, XmlDataset};
