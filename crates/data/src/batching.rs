//! Seeded shuffled sample streams and mega-batch accounting.
//!
//! The dynamic scheduler consumes training samples as a continuous shuffled
//! stream: batches of *varying* size are cut from it on demand (batch size
//! scaling changes sizes between mega-batches), and the stream reshuffles
//! each time it exhausts the training set. Epoch progress is fractional:
//! `samples_drawn / train_size`, which is what the statistical-efficiency
//! plots (Fig. 5b) use on their x-axis.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// An endless, seeded, shuffled stream of sample indices.
#[derive(Debug, Clone)]
pub struct SampleStream {
    n: usize,
    order: Vec<u32>,
    pos: usize,
    drawn: u64,
    rng: StdRng,
}

impl SampleStream {
    /// Creates a stream over `0..n` with its own shuffle RNG.
    ///
    /// # Panics
    /// Panics when `n == 0` — an empty training set cannot be streamed.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "cannot stream an empty dataset");
        assert!(n <= u32::MAX as usize, "dataset too large for u32 indices");
        let mut s = Self {
            n,
            order: (0..n as u32).collect(),
            pos: 0,
            drawn: 0,
            rng: StdRng::seed_from_u64(seed),
        };
        s.reshuffle();
        s
    }

    fn reshuffle(&mut self) {
        // Fisher–Yates with the stream's own RNG.
        for i in (1..self.order.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            self.order.swap(i, j);
        }
        self.pos = 0;
    }

    /// Draws the next `count` sample indices, reshuffling at wrap-around.
    pub fn take(&mut self, count: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            if self.pos == self.n {
                self.reshuffle();
            }
            let remaining = count - out.len();
            let available = self.n - self.pos;
            let grab = remaining.min(available);
            out.extend(
                self.order[self.pos..self.pos + grab]
                    .iter()
                    .map(|&i| i as usize),
            );
            self.pos += grab;
        }
        self.drawn += count as u64;
        out
    }

    /// Total samples drawn so far.
    pub fn drawn(&self) -> u64 {
        self.drawn
    }

    /// Fractional epochs completed: `drawn / n`.
    pub fn epochs(&self) -> f64 {
        self.drawn as f64 / self.n as f64
    }

    /// Training-set size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never true (construction rejects `n == 0`); present for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Tracks the remaining budget of one mega-batch (a fixed number of training
/// samples processed between two model-merging stages, §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MegaBatchBudget {
    total: usize,
    left: usize,
}

impl MegaBatchBudget {
    /// A fresh budget of `total` samples.
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "mega-batch must hold at least one sample");
        Self { total, left: total }
    }

    /// Requests a batch of `want` samples; returns the granted size (the
    /// final batch of a mega-batch is truncated to what remains), or `None`
    /// when the budget is exhausted.
    pub fn grant(&mut self, want: usize) -> Option<usize> {
        if self.left == 0 {
            return None;
        }
        let got = want.max(1).min(self.left);
        self.left -= got;
        Some(got)
    }

    /// Remaining samples in this mega-batch.
    pub fn remaining(&self) -> usize {
        self.left
    }

    /// Resets to a full budget (next mega-batch).
    pub fn refill(&mut self) {
        self.left = self.total;
    }

    /// Configured mega-batch size.
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_covers_whole_dataset_each_pass() {
        let mut s = SampleStream::new(100, 1);
        let ids = s.take(100);
        let mut seen = [false; 100];
        for i in ids {
            assert!(!seen[i], "duplicate within one pass");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn stream_wraps_and_reshuffles() {
        let mut s = SampleStream::new(10, 2);
        let first = s.take(10);
        let second = s.take(10);
        assert_ne!(first, second, "reshuffle should change order");
        assert_eq!(s.drawn(), 20);
        assert!((s.epochs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn take_spanning_wrap_has_correct_length() {
        let mut s = SampleStream::new(7, 3);
        let ids = s.take(20);
        assert_eq!(ids.len(), 20);
        assert!(ids.iter().all(|&i| i < 7));
    }

    #[test]
    fn stream_is_deterministic() {
        let a: Vec<usize> = SampleStream::new(50, 9).take(120);
        let b: Vec<usize> = SampleStream::new(50, 9).take(120);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_stream_panics() {
        let _ = SampleStream::new(0, 0);
    }

    #[test]
    fn budget_grants_until_exhausted() {
        let mut b = MegaBatchBudget::new(10);
        assert_eq!(b.grant(4), Some(4));
        assert_eq!(b.grant(4), Some(4));
        assert_eq!(b.grant(4), Some(2), "final batch truncates");
        assert_eq!(b.grant(4), None);
        b.refill();
        assert_eq!(b.remaining(), 10);
    }

    #[test]
    fn budget_grants_at_least_one() {
        let mut b = MegaBatchBudget::new(5);
        assert_eq!(b.grant(0), Some(1));
    }
}
