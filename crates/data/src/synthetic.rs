//! The synthetic XML dataset generator.
//!
//! Generation is a deterministic function of `(spec, seed)`:
//!
//! 1. every label gets a *prototype pool* of characteristic features, drawn
//!    from the global Zipf feature distribution by a per-label RNG (popular
//!    features are shared across prototypes, tails are distinctive);
//! 2. per sample: draw the label count (Poisson around the Table I mean,
//!    min 1), the labels (Zipf over the label space, de-duplicated), and the
//!    non-zero count (log-normal with the spec's mean and CV — the source of
//!    batch heterogeneity);
//! 3. each feature comes from a uniformly chosen label's prototype with
//!    probability `1 − noise_fraction`, otherwise from the global Zipf;
//!    values are log-normal around 1 (tf-idf-ish).
//!
//! Because features are conditioned on labels, a linear/MLP model genuinely
//! learns the mapping, so accuracy-vs-time curves behave like the paper's.

use crate::spec::DatasetSpec;
use asgd_sparse::{libsvm::LibsvmDataset, CooBuilder, CsrMatrix};
use asgd_stats::{LogNormal, Poisson, Zipf};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One split (train or test) of a dataset.
#[derive(Debug, Clone)]
pub struct SplitData {
    /// `samples × num_features` sparse features.
    pub features: CsrMatrix,
    /// Per-sample sorted label sets.
    pub labels: Vec<Vec<u32>>,
}

impl SplitData {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// A complete dataset: train + test splits and the axis sizes.
#[derive(Debug, Clone)]
pub struct XmlDataset {
    /// Dataset name (from the spec).
    pub name: String,
    /// Training split.
    pub train: SplitData,
    /// Held-out split used for top-1 accuracy.
    pub test: SplitData,
    /// Feature dimensionality.
    pub num_features: usize,
    /// Label-space size.
    pub num_labels: usize,
}

impl XmlDataset {
    /// Wraps two libSVM files (train, test) loaded with
    /// [`asgd_sparse::libsvm::read`] — the path for running on real XC data.
    pub fn from_libsvm(name: &str, train: LibsvmDataset, test: LibsvmDataset) -> Self {
        assert_eq!(
            train.features.cols(),
            test.features.cols(),
            "train/test feature dimensionality mismatch"
        );
        let num_labels = train.num_labels.max(test.num_labels);
        XmlDataset {
            name: name.to_string(),
            num_features: train.features.cols(),
            num_labels,
            train: SplitData {
                features: train.features,
                labels: train.labels,
            },
            test: SplitData {
                features: test.features,
                labels: test.labels,
            },
        }
    }

    /// Loads train/test libSVM files through the streaming reader
    /// ([`asgd_sparse::libsvm::read_file`]): each file is consumed in 1 MiB
    /// chunks and appended row-by-row to the CSR arrays, so full-label-scale
    /// XC datasets (Amazon-670k, Delicious-200k) load without materializing
    /// the text or a COO intermediate in memory.
    pub fn from_libsvm_files(
        name: &str,
        train_path: impl AsRef<std::path::Path>,
        test_path: impl AsRef<std::path::Path>,
    ) -> Result<Self, asgd_sparse::libsvm::ParseError> {
        let train = asgd_sparse::libsvm::read_file(train_path)?;
        let test = asgd_sparse::libsvm::read_file(test_path)?;
        Ok(Self::from_libsvm(name, train, test))
    }
}

/// Generates a dataset from a spec, deterministically per seed.
pub fn generate(spec: &DatasetSpec, seed: u64) -> XmlDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let feature_dist =
        Zipf::new(spec.num_features as u64, spec.feature_zipf_s).expect("feature zipf");
    let label_dist = Zipf::new(spec.num_labels as u64, spec.label_zipf_s).expect("label zipf");
    let nnz_dist =
        LogNormal::from_mean_cv(spec.avg_features_per_sample, spec.nnz_cv).expect("nnz log-normal");
    // Poisson around (mean - 1), then +1: guarantees ≥1 label with the
    // requested mean.
    let label_count_dist =
        Poisson::new((spec.avg_labels_per_sample - 1.0).max(0.05)).expect("label count poisson");
    let value_dist = LogNormal::from_mean_cv(1.0, 0.5).expect("value log-normal");

    let train = generate_split(
        spec,
        spec.train_samples,
        seed,
        &mut rng,
        &feature_dist,
        &label_dist,
        &nnz_dist,
        &label_count_dist,
        &value_dist,
    );
    let test = generate_split(
        spec,
        spec.test_samples,
        seed,
        &mut rng,
        &feature_dist,
        &label_dist,
        &nnz_dist,
        &label_count_dist,
        &value_dist,
    );
    XmlDataset {
        name: spec.name.clone(),
        train,
        test,
        num_features: spec.num_features,
        num_labels: spec.num_labels,
    }
}

/// The prototype feature pool of `label`: deterministic in `(seed, label)`,
/// independent of sample order.
///
/// Prototype features are Zipf *ranks* rotated by a label-specific offset:
/// every label keeps a popularity-shaped pool (a few frequent features, a
/// long distinctive tail) while different labels land on mostly disjoint
/// feature sets — without the rotation, head features would dominate every
/// prototype and labels would be indistinguishable at small scale.
fn prototype(spec: &DatasetSpec, seed: u64, label: u32, feature_dist: &Zipf) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(label as u64),
    );
    let n = spec.num_features as u64;
    let offset = rng.gen_range(0..n);
    (0..spec.prototype_size)
        .map(|_| {
            let rank = feature_dist.sample(&mut rng) - 1;
            ((rank + offset) % n) as u32
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn generate_split(
    spec: &DatasetSpec,
    n_samples: usize,
    seed: u64,
    rng: &mut StdRng,
    feature_dist: &Zipf,
    label_dist: &Zipf,
    nnz_dist: &LogNormal,
    label_count_dist: &Poisson,
    value_dist: &LogNormal,
) -> SplitData {
    let mut coo = CooBuilder::new(n_samples, spec.num_features);
    let mut labels: Vec<Vec<u32>> = Vec::with_capacity(n_samples);
    // Small LRU-ish prototype cache: label popularity is Zipf, so a modest
    // cache catches most hits without holding every prototype.
    let mut cache: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    const CACHE_CAP: usize = 8192;

    for s in 0..n_samples {
        // Labels: the target is a *distinct* label count (Table I reports
        // distinct labels per sample); Zipf duplicates are redrawn, with an
        // attempt cap for label spaces smaller than the target.
        let n_labels = (label_count_dist.sample(rng) + 1) as usize;
        let mut labs: Vec<u32> = Vec::with_capacity(n_labels);
        let mut attempts = 0usize;
        while labs.len() < n_labels && attempts < n_labels * 8 {
            attempts += 1;
            let l = (label_dist.sample(rng) - 1) as u32;
            if let Err(pos) = labs.binary_search(&l) {
                labs.insert(pos, l);
            }
        }

        // Feature count: log-normal, at least 1, at most the feature space.
        let nnz = (nnz_dist.sample(rng).round() as usize).clamp(1, spec.num_features);

        // Features: prototype mixture + noise. The target is `nnz` *distinct*
        // features (Table I reports distinct non-zeros); duplicates merge, so
        // keep drawing until the target is met, with an attempt cap for tiny
        // feature spaces.
        let mut feats: std::collections::BTreeMap<u32, f32> = std::collections::BTreeMap::new();
        let mut attempts = 0usize;
        while feats.len() < nnz && attempts < nnz * 8 {
            attempts += 1;
            let f = if rng.gen::<f64>() < spec.noise_fraction || labs.is_empty() {
                (feature_dist.sample(rng) - 1) as u32
            } else {
                let lab = labs[rng.gen_range(0..labs.len())];
                if cache.len() >= CACHE_CAP && !cache.contains_key(&lab) {
                    cache.clear();
                }
                let proto = cache
                    .entry(lab)
                    .or_insert_with(|| prototype(spec, seed, lab, feature_dist));
                proto[rng.gen_range(0..proto.len())]
            };
            let v = value_dist.sample(rng) as f32;
            *feats.entry(f).or_insert(0.0) += v;
        }
        for (f, v) in feats {
            coo.push(s, f as usize, v);
        }
        labels.push(labs);
    }
    SplitData {
        features: coo.into_csr(),
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;

    fn tiny() -> XmlDataset {
        generate(&DatasetSpec::tiny("t"), 11)
    }

    #[test]
    fn shapes_match_spec() {
        let spec = DatasetSpec::tiny("t");
        let ds = tiny();
        assert_eq!(ds.train.len(), spec.train_samples);
        assert_eq!(ds.test.len(), spec.test_samples);
        assert_eq!(ds.train.features.cols(), spec.num_features);
        assert_eq!(ds.num_labels, spec.num_labels);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::tiny("t");
        let a = generate(&spec, 5);
        let b = generate(&spec, 5);
        assert_eq!(a.train.features, b.train.features);
        assert_eq!(a.train.labels, b.train.labels);
        let c = generate(&spec, 6);
        assert_ne!(a.train.features, c.train.features);
    }

    #[test]
    fn every_sample_has_labels_and_features() {
        let ds = tiny();
        for (i, labs) in ds.train.labels.iter().enumerate() {
            assert!(!labs.is_empty(), "sample {i} has no labels");
            assert!(ds.train.features.row_nnz(i) >= 1, "sample {i} empty");
        }
    }

    #[test]
    fn labels_are_sorted_unique_and_in_range() {
        let ds = tiny();
        for labs in &ds.train.labels {
            for w in labs.windows(2) {
                assert!(w[0] < w[1]);
            }
            assert!(labs.iter().all(|&l| (l as usize) < ds.num_labels));
        }
    }

    #[test]
    fn avg_nnz_matches_spec_roughly() {
        let spec = DatasetSpec::tiny("t");
        let ds = tiny();
        let avg = ds.train.features.avg_row_nnz();
        // Duplicate-feature collapse loses a little; allow ±30%.
        assert!(
            (avg - spec.avg_features_per_sample).abs() / spec.avg_features_per_sample < 0.3,
            "avg nnz {avg} vs spec {}",
            spec.avg_features_per_sample
        );
    }

    #[test]
    fn nnz_varies_across_samples() {
        // The heterogeneity driver: per-sample nnz must have real spread.
        let ds = tiny();
        let nnzs: Vec<usize> = (0..ds.train.len())
            .map(|i| ds.train.features.row_nnz(i))
            .collect();
        let min = *nnzs.iter().min().unwrap();
        let max = *nnzs.iter().max().unwrap();
        assert!(max >= 2 * min.max(1), "no nnz spread: min {min} max {max}");
    }

    #[test]
    fn popular_labels_dominate() {
        let ds = tiny();
        let mut counts = vec![0usize; ds.num_labels];
        for labs in &ds.train.labels {
            for &l in labs {
                counts[l as usize] += 1;
            }
        }
        // Label 0 (rank 1 in the Zipf) must be among the most frequent.
        let max = *counts.iter().max().unwrap();
        assert!(
            counts[0] * 2 >= max,
            "label 0 count {} max {max}",
            counts[0]
        );
    }

    #[test]
    fn prototypes_are_stable_per_label() {
        let spec = DatasetSpec::tiny("t");
        let dist = asgd_stats::Zipf::new(spec.num_features as u64, spec.feature_zipf_s).unwrap();
        let a = prototype(&spec, 9, 3, &dist);
        let b = prototype(&spec, 9, 3, &dist);
        let c = prototype(&spec, 9, 4, &dist);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn from_libsvm_wraps_splits() {
        let text = "2 4 3\n0 0:1 2:1\n1,2 1:1\n";
        let train = asgd_sparse::libsvm::read(std::io::BufReader::new(text.as_bytes())).unwrap();
        let test = asgd_sparse::libsvm::read(std::io::BufReader::new(text.as_bytes())).unwrap();
        let ds = XmlDataset::from_libsvm("real", train, test);
        assert_eq!(ds.train.len(), 2);
        assert_eq!(ds.num_features, 4);
        assert_eq!(ds.num_labels, 3);
    }

    #[test]
    fn from_libsvm_files_streams_both_splits() {
        let dir = std::env::temp_dir();
        let train_path = dir.join("asgd_from_libsvm_files_train.txt");
        let test_path = dir.join("asgd_from_libsvm_files_test.txt");
        std::fs::write(&train_path, "2 4 3\n0 0:1 2:1\n1,2 1:1\n").unwrap();
        std::fs::write(&test_path, "1 4 3\n1 3:2\n").unwrap();
        let ds = XmlDataset::from_libsvm_files("real", &train_path, &test_path).unwrap();
        std::fs::remove_file(&train_path).ok();
        std::fs::remove_file(&test_path).ok();
        assert_eq!(ds.train.len(), 2);
        assert_eq!(ds.test.len(), 1);
        assert_eq!(ds.num_features, 4);
        assert_eq!(ds.num_labels, 3);
        assert_eq!(ds.test.features.row(0), (&[3u32][..], &[2.0f32][..]));
    }
}
