//! Deeper dataset diagnostics beyond Table I: label frequency profiles,
//! per-sample nnz distribution, and the constant-predictor baseline.
//!
//! These quantify exactly the properties the algorithms react to — nnz
//! variance drives batch-time heterogeneity (§I), and the label skew sets
//! the floor any useful model must beat.

use crate::synthetic::SplitData;
use asgd_stats::{percentile, StreamingSummary};

/// Distribution summary of per-sample non-zero counts.
#[derive(Debug, Clone, PartialEq)]
pub struct NnzProfile {
    /// Mean nnz per sample.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Minimum observed.
    pub min: usize,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum observed.
    pub max: usize,
}

impl NnzProfile {
    /// Computes the profile of a split.
    pub fn compute(split: &SplitData) -> Self {
        let mut s = StreamingSummary::new();
        let nnzs: Vec<f64> = (0..split.len())
            .map(|i| {
                let v = split.features.row_nnz(i) as f64;
                s.record(v);
                v
            })
            .collect();
        NnzProfile {
            mean: s.mean(),
            std_dev: s.std_dev(),
            min: s.min().unwrap_or(0.0) as usize,
            p50: percentile(&nnzs, 0.5).unwrap_or(0.0),
            p95: percentile(&nnzs, 0.95).unwrap_or(0.0),
            max: s.max().unwrap_or(0.0) as usize,
        }
    }

    /// Coefficient of variation — the batch-heterogeneity driver.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Label-frequency diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelProfile {
    /// Distinct labels that appear at least once.
    pub active_labels: usize,
    /// Fraction of samples containing the single most frequent label —
    /// the top-1 accuracy of the best *constant* predictor.
    pub constant_predictor_baseline: f64,
    /// Mean labels per sample.
    pub mean_labels: f64,
    /// Fraction of label occurrences covered by the 10 most frequent labels.
    pub head10_share: f64,
}

impl LabelProfile {
    /// Computes the profile of a split over a `num_labels`-sized space.
    pub fn compute(split: &SplitData, num_labels: usize) -> Self {
        let mut counts = vec![0u64; num_labels];
        let mut total = 0u64;
        for labs in &split.labels {
            for &l in labs {
                counts[l as usize] += 1;
                total += 1;
            }
        }
        let active = counts.iter().filter(|&&c| c > 0).count();
        let max = counts.iter().copied().max().unwrap_or(0);
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let head10: u64 = sorted.iter().take(10).sum();
        let n = split.len().max(1) as f64;
        LabelProfile {
            active_labels: active,
            // Labels are de-duplicated per sample, so the count of the most
            // frequent label equals the number of samples containing it.
            constant_predictor_baseline: max as f64 / n,
            mean_labels: total as f64 / n,
            head10_share: if total == 0 {
                0.0
            } else {
                head10 as f64 / total as f64
            },
        }
    }
}

/// Splits a [`SplitData`] into train/validation parts by a seeded shuffle —
/// used when tuning hyperparameters without touching the held-out test set.
///
/// `val_fraction` is clamped so both sides keep at least one sample (for
/// splits with ≥ 2 samples).
///
/// # Panics
/// Panics on an empty split.
pub fn train_val_split(split: &SplitData, val_fraction: f64, seed: u64) -> (SplitData, SplitData) {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let n = split.len();
    assert!(n > 0, "cannot split an empty dataset");
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let n_val = ((n as f64 * val_fraction).round() as usize).clamp(
        usize::from(n >= 2),
        n.saturating_sub(1).max(usize::from(n == 1)),
    );
    let (val_ids, train_ids) = order.split_at(n_val);
    let take = |ids: &[usize]| SplitData {
        features: split.features.select_rows(ids),
        labels: ids.iter().map(|&i| split.labels[i].clone()).collect(),
    };
    (take(train_ids), take(val_ids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;
    use crate::synthetic::generate;

    fn split() -> (SplitData, usize) {
        let ds = generate(&DatasetSpec::tiny("analysis"), 3);
        (ds.train, ds.num_labels)
    }

    #[test]
    fn nnz_profile_is_ordered() {
        let (s, _) = split();
        let p = NnzProfile::compute(&s);
        assert!(p.min as f64 <= p.p50);
        assert!(p.p50 <= p.p95);
        assert!(p.p95 <= p.max as f64);
        assert!(p.mean > 0.0);
        assert!(p.cv() > 0.0, "tiny spec has nnz spread");
    }

    #[test]
    fn label_profile_baseline_is_a_probability() {
        let (s, n) = split();
        let p = LabelProfile::compute(&s, n);
        assert!(p.constant_predictor_baseline > 0.0);
        assert!(p.constant_predictor_baseline <= 1.0);
        assert!(p.active_labels <= n);
        assert!(p.mean_labels >= 1.0);
        assert!(p.head10_share > 0.0 && p.head10_share <= 1.0);
    }

    #[test]
    fn handmade_split_matches_expectations() {
        use asgd_sparse::CsrMatrix;
        let features = CsrMatrix::from_rows(
            4,
            &[
                (vec![0], vec![1.0]),
                (vec![0, 1, 2], vec![1.0, 1.0, 1.0]),
                (vec![1], vec![1.0]),
            ],
        )
        .unwrap();
        let labels = vec![vec![0u32, 1], vec![0], vec![2]];
        let split = SplitData { features, labels };
        let nnz = NnzProfile::compute(&split);
        assert_eq!(nnz.min, 1);
        assert_eq!(nnz.max, 3);
        assert!((nnz.mean - 5.0 / 3.0).abs() < 1e-12);
        let lp = LabelProfile::compute(&split, 5);
        assert_eq!(lp.active_labels, 3);
        // Label 0 appears in 2 of 3 samples.
        assert!((lp.constant_predictor_baseline - 2.0 / 3.0).abs() < 1e-12);
        assert!((lp.mean_labels - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn train_val_split_partitions_without_overlap() {
        let (s, _) = split();
        let n = s.len();
        let (train, val) = train_val_split(&s, 0.25, 7);
        assert_eq!(train.len() + val.len(), n);
        assert_eq!(val.len(), (n as f64 * 0.25).round() as usize);
        // Feature mass is conserved (no sample duplicated or dropped).
        assert_eq!(train.features.nnz() + val.features.nnz(), s.features.nnz());
    }

    #[test]
    fn train_val_split_is_deterministic_per_seed() {
        let (s, _) = split();
        let (a, _) = train_val_split(&s, 0.3, 9);
        let (b, _) = train_val_split(&s, 0.3, 9);
        assert_eq!(a.labels, b.labels);
        let (c, _) = train_val_split(&s, 0.3, 10);
        assert_ne!(a.labels, c.labels);
    }

    #[test]
    fn extreme_fractions_keep_both_sides_nonempty() {
        let (s, _) = split();
        let (train, val) = train_val_split(&s, 0.0, 1);
        assert!(!val.is_empty() && !train.is_empty());
        let (train, val) = train_val_split(&s, 1.0, 1);
        assert!(!val.is_empty() && !train.is_empty());
    }

    #[test]
    fn empty_split_is_safe() {
        use asgd_sparse::CsrMatrix;
        let split = SplitData {
            features: CsrMatrix::zeros(0, 4),
            labels: vec![],
        };
        let nnz = NnzProfile::compute(&split);
        assert_eq!(nnz.mean, 0.0);
        let lp = LabelProfile::compute(&split, 4);
        assert_eq!(lp.active_labels, 0);
        assert_eq!(lp.constant_predictor_baseline, 0.0);
    }
}
