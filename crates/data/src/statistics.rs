//! Table I statistics of a dataset.

use crate::synthetic::XmlDataset;

/// The row schema of the paper's Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Feature dimensionality.
    pub features: usize,
    /// Label-space size ("classes").
    pub classes: usize,
    /// Training samples.
    pub training_samples: usize,
    /// Testing samples.
    pub testing_samples: usize,
    /// Mean non-zero features per training sample.
    pub avg_features_per_sample: f64,
    /// Mean labels per training sample.
    pub avg_classes_per_sample: f64,
}

impl DatasetStats {
    /// Computes the statistics of a dataset (over its training split, like
    /// the repository's reported numbers).
    pub fn compute(ds: &XmlDataset) -> Self {
        let n = ds.train.len();
        let avg_labels = if n == 0 {
            0.0
        } else {
            ds.train.labels.iter().map(|l| l.len()).sum::<usize>() as f64 / n as f64
        };
        DatasetStats {
            name: ds.name.clone(),
            features: ds.num_features,
            classes: ds.num_labels,
            training_samples: n,
            testing_samples: ds.test.len(),
            avg_features_per_sample: ds.train.features.avg_row_nnz(),
            avg_classes_per_sample: avg_labels,
        }
    }

    /// One CSV row matching Table I's column order.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{:.1},{:.1}",
            self.name,
            self.features,
            self.classes,
            self.training_samples,
            self.testing_samples,
            self.avg_features_per_sample,
            self.avg_classes_per_sample
        )
    }

    /// The CSV header for [`DatasetStats::csv_row`].
    pub fn csv_header() -> &'static str {
        "dataset,features,classes,training_samples,testing_samples,avg_features_per_sample,avg_classes_per_sample"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;
    use crate::synthetic::generate;

    #[test]
    fn stats_reflect_generated_data() {
        let spec = DatasetSpec::tiny("t");
        let ds = generate(&spec, 3);
        let s = DatasetStats::compute(&ds);
        assert_eq!(s.features, spec.num_features);
        assert_eq!(s.classes, spec.num_labels);
        assert_eq!(s.training_samples, spec.train_samples);
        assert_eq!(s.testing_samples, spec.test_samples);
        assert!(s.avg_features_per_sample > 0.0);
        assert!(s.avg_classes_per_sample >= 1.0);
    }

    #[test]
    fn csv_row_has_seven_fields() {
        let ds = generate(&DatasetSpec::tiny("t"), 3);
        let s = DatasetStats::compute(&ds);
        assert_eq!(s.csv_row().split(',').count(), 7);
        assert_eq!(DatasetStats::csv_header().split(',').count(), 7);
    }
}
