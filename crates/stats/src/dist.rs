//! Random distributions implemented directly on [`rand::Rng`].
//!
//! Only the distributions the reproduction actually needs are provided, each
//! with an explicit constructor that validates its parameters. All samplers
//! take `&mut impl Rng` so callers control seeding and stream splitting.

// Parameter validation deliberately uses negated comparisons (`!(x > 0.0)`)
// so NaN fails validation too; the positive form would accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use rand::Rng;

/// Error returned when a distribution is constructed with invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistError(pub &'static str);

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for DistError {}

/// Normal (Gaussian) distribution sampled with the Marsaglia polar method.
///
/// The polar method produces two independent variates per acceptance; the
/// spare is cached per *call pair* is not kept (the struct is immutable), so
/// each call performs its own rejection loop. This keeps the sampler `Sync`
/// and trivially usable from multiple threads with independent RNGs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation. `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistError> {
        if !mean.is_finite() {
            return Err(DistError("normal mean must be finite"));
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(DistError("normal std_dev must be finite and >= 0"));
        }
        Ok(Self { mean, std_dev })
    }

    /// Samples one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

/// Samples a standard normal variate via the Marsaglia polar method.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = rng.gen_range(-1.0f64..1.0);
        let v = rng.gen_range(-1.0f64..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
///
/// Used by the GPU simulator's jitter process and by the synthetic dataset
/// generator for per-sample non-zero counts, both of which the paper
/// identifies as right-skewed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal from the parameters of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        Ok(Self {
            norm: Normal::new(mu, sigma)?,
        })
    }

    /// Creates a log-normal whose *resulting* distribution has the given mean
    /// and coefficient of variation `cv = std/mean` (both must be positive,
    /// `cv` may be zero for a degenerate point mass).
    pub fn from_mean_cv(mean: f64, cv: f64) -> Result<Self, DistError> {
        if !(mean > 0.0) || !mean.is_finite() {
            return Err(DistError("log-normal mean must be positive"));
        }
        if !(cv >= 0.0) || !cv.is_finite() {
            return Err(DistError("log-normal cv must be >= 0"));
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Self::new(mu, sigma2.sqrt())
    }

    /// Samples one variate (always positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s > 0`:
/// `P(k) ∝ k^-s`.
///
/// Sampling uses rejection-inversion (W. Hörmann & G. Derflinger,
/// "Rejection-inversion to generate variates from monotone discrete
/// distributions", 1996), which is O(1) per sample for any `n` — important
/// because the XML generators draw from label spaces with up to hundreds of
/// thousands of ranks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants of the rejection-inversion scheme.
    h_x1: f64,
    h_n: f64,
    dist: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s`.
    pub fn new(n: u64, s: f64) -> Result<Self, DistError> {
        if n == 0 {
            return Err(DistError("zipf n must be >= 1"));
        }
        if !(s > 0.0) || !s.is_finite() {
            return Err(DistError("zipf exponent must be positive"));
        }
        let h = |x: f64| -> f64 { h_integral(x, s) };
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n as f64 + 0.5);
        Ok(Self {
            n,
            s,
            h_x1,
            h_n,
            dist: h_x1 - h_n,
        })
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Samples one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_n + rng.gen::<f64>() * self.dist;
            let x = h_integral_inv(u, self.s);
            let k64 = x.round().clamp(1.0, self.n as f64);
            let k = k64 as u64;
            // Accept when u is above the hat restricted to this integer.
            if u >= h_integral(k64 + 0.5, self.s) - (-(k64.ln()) * self.s).exp()
                || u >= h_integral(k64 - 0.5, self.s)
            {
                return k;
            }
        }
    }
}

/// `H(x) = ∫ x^-s dx` — the antiderivative used by rejection-inversion,
/// written to stay numerically stable near `s = 1`.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// Inverse of [`h_integral`].
fn h_integral_inv(x: f64, s: f64) -> f64 {
    let mut t = x * (1.0 - s);
    if t < -1.0 {
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `log1p(x)/x`, stable at 0.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `expm1(x)/x`, stable at 0.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x))
    }
}

/// Poisson distribution.
///
/// Uses Knuth's multiplication method for small `lambda` and a normal
/// approximation (rounded, clamped at zero) for large `lambda`, which is
/// accurate enough for workload-size draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, DistError> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(DistError("poisson lambda must be positive"));
        }
        Ok(Self { lambda })
    }

    /// Samples one count.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < 30.0 {
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0f64;
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let x = self.lambda + self.lambda.sqrt() * standard_normal(rng);
            x.round().max(0.0) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn normal_moments_match() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut r = rng(1);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut r);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn normal_zero_stddev_is_degenerate() {
        let d = Normal::new(5.0, 0.0).unwrap();
        let mut r = rng(2);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 5.0);
        }
    }

    #[test]
    fn lognormal_positive_and_mean_cv() {
        let d = LogNormal::from_mean_cv(76.0, 0.8).unwrap();
        let mut r = rng(3);
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut r);
            assert!(x > 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 76.0).abs() / 76.0 < 0.02, "mean {mean}");
    }

    #[test]
    fn lognormal_rejects_bad_params() {
        assert!(LogNormal::from_mean_cv(0.0, 1.0).is_err());
        assert!(LogNormal::from_mean_cv(1.0, -0.5).is_err());
    }

    #[test]
    fn zipf_rank_bounds() {
        let d = Zipf::new(1000, 1.2).unwrap();
        let mut r = rng(4);
        for _ in 0..50_000 {
            let k = d.sample(&mut r);
            assert!((1..=1000).contains(&k));
        }
    }

    #[test]
    fn zipf_is_monotone_decreasing_in_rank() {
        let d = Zipf::new(100, 1.0).unwrap();
        let mut r = rng(5);
        let mut counts = [0u64; 101];
        for _ in 0..400_000 {
            counts[d.sample(&mut r) as usize] += 1;
        }
        // Rank 1 must dominate rank 10 must dominate rank 100.
        assert!(counts[1] > counts[10]);
        assert!(counts[10] > counts[100]);
        // Ratio P(1)/P(2) should be close to 2 for s = 1.
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 2.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn zipf_n_one_always_returns_one() {
        let d = Zipf::new(1, 2.0).unwrap();
        let mut r = rng(6);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 1);
        }
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let d = Poisson::new(4.5).unwrap();
        let mut r = rng(7);
        let n = 100_000;
        let mut sum = 0u64;
        for _ in 0..n {
            sum += d.sample(&mut r);
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let d = Poisson::new(300.0).unwrap();
        let mut r = rng(8);
        let n = 50_000;
        let mut sum = 0u64;
        for _ in 0..n {
            sum += d.sample(&mut r);
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 300.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn determinism_across_identical_seeds() {
        let d = Zipf::new(5000, 1.1).unwrap();
        let a: Vec<u64> = {
            let mut r = rng(99);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng(99);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
