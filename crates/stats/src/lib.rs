//! Seeded random distributions and streaming statistics.
//!
//! This crate is the numerical utility layer shared by the rest of the
//! Adaptive SGD reproduction. It deliberately re-implements the small set of
//! distributions the system needs (normal, log-normal, Zipf, Poisson) on top
//! of [`rand`]'s core traits so that every stochastic component of the
//! simulator — jitter processes, synthetic dataset generators, model
//! initialization — is driven by explicitly seeded [`rand::rngs::StdRng`]
//! instances and is therefore bit-reproducible across runs and thread counts.
//!
//! # Modules
//!
//! * [`dist`] — sampling: [`dist::Normal`], [`dist::LogNormal`],
//!   [`dist::Zipf`], [`dist::Poisson`].
//! * [`summary`] — streaming summaries: [`summary::StreamingSummary`]
//!   (Welford), [`summary::Ewma`], percentile helpers.
//! * [`histogram`] — fixed-bin histograms used by execution traces.
//! * [`fnv`] — FNV-1a checksums shared by the determinism probes/goldens.
//!
//! # Example
//!
//! ```
//! use asgd_stats::dist::{Normal, Zipf};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let gauss = Normal::new(0.0, 1.0).unwrap();
//! let zipf = Zipf::new(1_000, 1.07).unwrap();
//! let x = gauss.sample(&mut rng);
//! let rank = zipf.sample(&mut rng);
//! assert!(x.is_finite());
//! assert!((1..=1_000).contains(&rank));
//! ```

pub mod dist;
pub mod fnv;
pub mod histogram;
pub mod quantile;
pub mod summary;

pub use dist::{LogNormal, Normal, Poisson, Zipf};
pub use fnv::fnv1a;
pub use histogram::Histogram;
pub use quantile::P2Quantile;
pub use summary::{percentile, Ewma, StreamingSummary};
