//! Streaming summaries: Welford mean/variance, EWMA, percentiles.

/// Numerically stable streaming summary (Welford's online algorithm).
///
/// Tracks count, mean, variance, min and max of a stream of `f64`s in O(1)
/// space. Used by the GPU simulator to summarize per-device kernel timings
/// and by the experiment harness to report epoch-time distributions (Fig. 1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamingSummary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel Welford / Chan et al.).
    pub fn merge(&mut self, other: &StreamingSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Relative spread `(max - min) / min`; the paper's "gap between the
    /// fastest and slowest GPU" metric (Fig. 1). `None` when empty or
    /// `min == 0`.
    pub fn relative_gap(&self) -> Option<f64> {
        if self.count == 0 || self.min == 0.0 {
            None
        } else {
            Some((self.max - self.min) / self.min)
        }
    }
}

/// Exponentially weighted moving average with smoothing factor `alpha`.
///
/// The dynamic scheduler uses an EWMA of per-batch processing speed to decide
/// stability of the batch-size scaling loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA; `alpha` is clamped into `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        Self {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            value: None,
        }
    }

    /// Feeds one observation and returns the updated average.
    pub fn record(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.value = Some(v);
        v
    }

    /// Current average (`None` until the first observation).
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Computes the `q`-th percentile (`0.0..=1.0`) of a slice by sorting a copy
/// and linearly interpolating between the two nearest ranks.
///
/// Returns `None` on an empty slice or a `q` outside `[0, 1]`.
pub fn percentile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = StreamingSummary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_empty_is_safe() {
        let s = StreamingSummary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.relative_gap(), None);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut whole = StreamingSummary::new();
        for &x in &data {
            whole.record(x);
        }
        let mut a = StreamingSummary::new();
        let mut b = StreamingSummary::new();
        for &x in &data[..37] {
            a.record(x);
        }
        for &x in &data[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = StreamingSummary::new();
        a.record(1.0);
        let before = a.clone();
        a.merge(&StreamingSummary::new());
        assert_eq!(a, before);

        let mut e = StreamingSummary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn relative_gap_matches_fig1_metric() {
        let mut s = StreamingSummary::new();
        s.record(1.0);
        s.record(1.32);
        let gap = s.relative_gap().unwrap();
        assert!((gap - 0.32).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.value(), None);
        for _ in 0..200 {
            e.record(7.0);
        }
        assert!((e.value().unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_first_observation_is_identity() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.record(42.0), 42.0);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 1.0), Some(4.0));
        assert_eq!(percentile(&data, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&data, 1.5), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn welford_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s = StreamingSummary::new();
            for &x in &xs {
                s.record(x);
            }
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
            prop_assert!((s.variance() - var).abs() <= 1e-5 * (1.0 + var));
        }

        #[test]
        fn merge_is_order_insensitive(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
            ys in proptest::collection::vec(-1e3f64..1e3, 1..100),
        ) {
            let fill = |data: &[f64]| {
                let mut s = StreamingSummary::new();
                for &x in data {
                    s.record(x);
                }
                s
            };
            let mut ab = fill(&xs);
            ab.merge(&fill(&ys));
            let mut ba = fill(&ys);
            ba.merge(&fill(&xs));
            prop_assert_eq!(ab.count(), ba.count());
            prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
            prop_assert!((ab.variance() - ba.variance()).abs() < 1e-6);
        }

        #[test]
        fn percentile_within_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..200), q in 0.0f64..=1.0) {
            let p = percentile(&xs, q).unwrap();
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p >= min - 1e-9 && p <= max + 1e-9);
        }
    }
}
