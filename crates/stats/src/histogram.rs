//! Fixed-bin histogram used by execution traces and experiment reports.

/// A histogram with uniformly sized bins over `[lo, hi)`.
///
/// Out-of-range observations are counted in saturating underflow/overflow
/// buckets so no sample is silently dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform buckets.
    ///
    /// # Panics
    /// Panics when `bins == 0` or `lo >= hi` or bounds are non-finite —
    /// these are programming errors, not data errors.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad bounds");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // Guard against FP edge where x is a hair under `hi`.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.bins.iter().sum::<u64>()
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Folds another histogram into this one (bin-wise count addition).
    ///
    /// Counts are integers, so the result is exact and independent of merge
    /// order — unlike [`crate::P2Quantile::merge`], which is a replay and
    /// must be applied in a fixed (e.g. replica-index) order.
    ///
    /// # Panics
    /// Panics when the two histograms have different bounds or bin counts —
    /// merging incompatible layouts is a programming error.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "cannot merge histograms with different layouts"
        );
        for (b, o) in self.bins.iter_mut().zip(other.bins.iter()) {
            *b += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.5);
        h.record(9.99);
        h.record(-1.0);
        h.record(10.0);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "bad bounds")]
    fn inverted_bounds_panic() {
        let _ = Histogram::new(1.0, 0.0, 4);
    }

    #[test]
    fn merge_adds_counts_exactly() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 3.0, 9.5, -1.0] {
            a.record(x);
        }
        for x in [0.7, 5.0, 12.0, 12.5] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.total(), 8);
        assert_eq!(a.bins()[0], 2);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 2);
    }

    #[test]
    #[should_panic(expected = "different layouts")]
    fn merge_rejects_mismatched_layouts() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 10);
        a.merge(&b);
    }
}
