//! Streaming quantile estimation with the P² algorithm.
//!
//! Jain & Chlamtac's P² (piecewise-parabolic) estimator maintains a target
//! quantile of a stream in O(1) memory — no sample buffer. Execution traces
//! use it to report tail latencies (p95/p99 of per-batch epoch times)
//! without retaining millions of observations.

/// Streaming estimator of a single quantile `q ∈ (0, 1)`.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    // Marker heights and positions (5 markers).
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    count: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` (e.g. `0.95`).
    ///
    /// # Panics
    /// Panics when `q` is outside `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The tracked quantile.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Observations seen.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.initial.push(x);
            if self.count == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
                for i in 0..5 {
                    self.heights[i] = self.initial[i];
                }
            }
            return;
        }

        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust interior markers with the parabolic (or linear) formula.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                let new_h = if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    candidate
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = new_h;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Folds another estimator for the *same* quantile into this one by
    /// replaying a deterministic summary of `other`'s stream: its raw buffer
    /// when it saw ≤ 5 observations, otherwise its five marker heights, each
    /// weighted by `other.count() / 5` (remainder spread over the lowest
    /// markers), in ascending marker order.
    ///
    /// P² is a streaming estimator, so merging is inherently *order
    /// dependent*: `a.merge(&b)` and `b.merge(&a)` may disagree in the last
    /// bits. Callers that need run-to-run determinism (e.g. fleet-wide tail
    /// latency across replicas) must merge in a fixed order — replica index,
    /// not completion order. Do not assume commutativity.
    ///
    /// # Panics
    /// Panics when the two estimators track different quantiles.
    pub fn merge(&mut self, other: &P2Quantile) {
        assert!(
            self.q == other.q,
            "cannot merge estimators of different quantiles ({} vs {})",
            self.q,
            other.q
        );
        if other.count == 0 {
            return;
        }
        if other.count <= 5 {
            for &x in &other.initial {
                self.record(x);
            }
            return;
        }
        let base = other.count / 5;
        let rem = other.count % 5;
        for (i, &h) in other.heights.iter().enumerate() {
            let reps = base + usize::from(i < rem);
            for _ in 0..reps {
                self.record(h);
            }
        }
    }

    /// Current estimate (`None` until 5 observations arrive; before that,
    /// use an exact method — the buffer is tiny anyway).
    pub fn value(&self) -> Option<f64> {
        if self.count >= 5 {
            Some(self.heights[2])
        } else if self.count > 0 {
            // Fall back to the exact small-sample quantile.
            let mut v = self.initial.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
            crate::summary::percentile(&v, self.q)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn median_of_uniform_stream() {
        let mut est = P2Quantile::new(0.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50_000 {
            est.record(rng.gen::<f64>());
        }
        let v = est.value().unwrap();
        assert!((v - 0.5).abs() < 0.02, "median {v}");
    }

    #[test]
    fn p95_of_uniform_stream() {
        let mut est = P2Quantile::new(0.95);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50_000 {
            est.record(rng.gen::<f64>());
        }
        let v = est.value().unwrap();
        assert!((v - 0.95).abs() < 0.02, "p95 {v}");
    }

    #[test]
    fn tracks_skewed_distributions() {
        // Exponential(1): true p90 = ln(10) ≈ 2.3026.
        let mut est = P2Quantile::new(0.9);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100_000 {
            let u: f64 = rng.gen();
            est.record(-(1.0 - u).ln());
        }
        let v = est.value().unwrap();
        assert!((v - std::f64::consts::LN_10).abs() < 0.12, "p90 {v}");
    }

    #[test]
    fn small_samples_fall_back_to_exact() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.value(), None);
        est.record(3.0);
        est.record(1.0);
        est.record(2.0);
        assert_eq!(est.value(), Some(2.0));
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn exactly_five_observations_initialize_markers() {
        let mut est = P2Quantile::new(0.5);
        for x in [5.0, 1.0, 4.0, 2.0, 3.0] {
            est.record(x);
        }
        assert_eq!(est.value(), Some(3.0));
    }

    #[test]
    fn estimate_is_within_observed_range() {
        let mut est = P2Quantile::new(0.75);
        let mut rng = StdRng::seed_from_u64(4);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>() * 100.0 - 50.0;
            min = min.min(x);
            max = max.max(x);
            est.record(x);
        }
        let v = est.value().unwrap();
        assert!(v >= min && v <= max);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn q_out_of_range_panics() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn merge_of_split_stream_tracks_exact_quantile() {
        // One stream recorded whole vs the same stream split across 4
        // per-replica estimators merged in replica-index order: both must
        // land near the exact quantile.
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.gen::<f64>()).collect();
        let mut parts: Vec<P2Quantile> = (0..4).map(|_| P2Quantile::new(0.99)).collect();
        for (i, &x) in xs.iter().enumerate() {
            parts[i % 4].record(x);
        }
        let mut merged = P2Quantile::new(0.99);
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.count(), xs.len());
        let exact = crate::summary::percentile(&xs, 0.99).unwrap();
        let v = merged.value().unwrap();
        assert!((v - exact).abs() < 0.03, "merged p99 {v} vs exact {exact}");
    }

    #[test]
    fn merge_in_fixed_order_is_deterministic() {
        let build = || {
            let mut rng = StdRng::seed_from_u64(21);
            let mut parts: Vec<P2Quantile> = (0..3).map(|_| P2Quantile::new(0.95)).collect();
            for i in 0..9_000 {
                parts[i % 3].record(rng.gen::<f64>());
            }
            let mut fleet = P2Quantile::new(0.95);
            for p in &parts {
                fleet.merge(p);
            }
            fleet.value().unwrap()
        };
        assert_eq!(build().to_bits(), build().to_bits());
    }

    #[test]
    fn merge_order_matters_so_callers_must_fix_it() {
        // P² merge is a replay, hence order dependent: merging the same two
        // estimators in opposite orders is NOT guaranteed to agree. This
        // test documents that callers must merge in replica-index order —
        // if this ever starts failing because the results agree bit-for-bit,
        // the estimator has become commutative and the ordering contract in
        // the docs can be relaxed.
        let mut a = P2Quantile::new(0.9);
        let mut b = P2Quantile::new(0.9);
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..4_000 {
            a.record(rng.gen::<f64>());
            b.record(rng.gen::<f64>() * 2.0);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.count(), ba.count());
        assert_ne!(
            ab.value().unwrap().to_bits(),
            ba.value().unwrap().to_bits(),
            "merge appears commutative for this stream; ordering contract may be relaxable"
        );
    }

    #[test]
    fn merge_small_counterpart_replays_raw_buffer() {
        let mut big = P2Quantile::new(0.5);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0] {
            big.record(x);
        }
        let mut small = P2Quantile::new(0.5);
        small.record(100.0);
        small.record(-100.0);
        let mut merged = big.clone();
        merged.merge(&small);
        assert_eq!(merged.count(), 9);
        // Exact replay of the raw buffer: identical to recording directly.
        let mut direct = big.clone();
        direct.record(100.0);
        direct.record(-100.0);
        assert_eq!(
            merged.value().unwrap().to_bits(),
            direct.value().unwrap().to_bits()
        );
        // Merging an empty estimator is a no-op.
        let before = merged.value().unwrap().to_bits();
        merged.merge(&P2Quantile::new(0.5));
        assert_eq!(merged.value().unwrap().to_bits(), before);
    }

    #[test]
    #[should_panic(expected = "different quantiles")]
    fn merge_rejects_mismatched_quantiles() {
        let mut a = P2Quantile::new(0.5);
        a.merge(&P2Quantile::new(0.9));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn estimate_close_to_exact_quantile(
            xs in proptest::collection::vec(-1e3f64..1e3, 200..2000),
            qi in 1usize..10,
        ) {
            let q = qi as f64 / 10.0;
            let mut est = P2Quantile::new(q);
            for &x in &xs {
                est.record(x);
            }
            let exact = crate::summary::percentile(&xs, q).unwrap();
            let approx = est.value().unwrap();
            // P² is approximate: allow 15% of the value range as tolerance.
            let range = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - xs.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(
                (approx - exact).abs() <= 0.15 * range.max(1e-9),
                "q={q}: approx {approx} vs exact {exact} (range {range})"
            );
        }
    }
}
