//! FNV-1a checksums for byte-exact determinism probes.
//!
//! Every determinism gate in the repo (the `*_probe` bins, the golden
//! integration tests, the CI byte-diff checks) fingerprints traces and model
//! buffers with the same 64-bit FNV-1a hash. This module is the single
//! definition; the constants follow Fowler–Noll–Vo exactly, so goldens are
//! portable across toolchains.

/// 64-bit FNV-1a over a byte stream.
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over the little-endian bytes of an `f32` slice (model buffers).
pub fn fnv1a_f32(xs: &[f32]) -> u64 {
    fnv1a(xs.iter().flat_map(|v| v.to_le_bytes()))
}

/// FNV-1a over the little-endian bytes of an `f64` slice (predictions).
pub fn fnv1a_f64(xs: &[f64]) -> u64 {
    fnv1a(xs.iter().flat_map(|v| v.to_le_bytes()))
}

/// FNV-1a over the little-endian bytes of a `u32` slice (index vectors).
pub fn fnv1a_u32(xs: &[u32]) -> u64 {
    fnv1a(xs.iter().flat_map(|v| v.to_le_bytes()))
}

/// FNV-1a over the little-endian bytes of a `u16` slice (bf16 payloads).
pub fn fnv1a_u16(xs: &[u16]) -> u64 {
    fnv1a(xs.iter().flat_map(|v| v.to_le_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_fnv1a_vectors() {
        // Reference values from the FNV specification / IETF draft.
        assert_eq!(fnv1a([]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(*b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(*b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn typed_helpers_agree_with_the_byte_stream() {
        let xs = [1.0f32, -2.5, 3.25];
        assert_eq!(
            fnv1a_f32(&xs),
            fnv1a(xs.iter().flat_map(|v| v.to_le_bytes()))
        );
        let us = [7u32, 0, u32::MAX];
        assert_eq!(
            fnv1a_u32(&us),
            fnv1a(us.iter().flat_map(|v| v.to_le_bytes()))
        );
        assert_eq!(fnv1a_u16(&[0x1234]), fnv1a([0x34u8, 0x12]));
        assert_ne!(fnv1a_f32(&[0.0]), fnv1a_f64(&[0.0]));
    }
}
