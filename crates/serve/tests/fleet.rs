//! Integration contracts of the multi-tenant fleet: per-tenant prediction
//! correctness through the dedup registry, thread-count invariance with
//! every subsystem armed, cache hit economics on the Zipf head, hedging
//! accounting, elastic autoscaling's cost win, and zero-loss degradation
//! under cluster faults.

use asgd_data::{generate, DatasetSpec, XmlDataset};
use asgd_gpusim::profile::{homogeneous_server, two_tier_server};
use asgd_gpusim::{ClusterTopology, DeviceProfile, FaultPlan};
use asgd_model::{Mlp, MlpConfig};
use asgd_serve::{
    adapter_variant, fleet_stream, serve_fleet, FleetConfig, FleetLoadSpec, ModelRegistry,
    VersionId,
};
use asgd_tensor::Precision;

fn tiny_dataset() -> XmlDataset {
    generate(&DatasetSpec::amazon_670k(0.001), 42 ^ 0xD5)
}

fn mlp_config(ds: &XmlDataset) -> MlpConfig {
    MlpConfig {
        num_features: ds.num_features,
        hidden: 24,
        num_classes: ds.num_labels,
    }
}

fn scaled(profiles: Vec<DeviceProfile>) -> Vec<DeviceProfile> {
    profiles
        .into_iter()
        .map(|p| p.with_overhead_scale(0.001))
        .collect()
}

/// base + one adapter fine-tune + a pinned copy of base: three tenants, two
/// distinct models, a registry that actually dedups.
fn three_tenant_registry(ds: &XmlDataset) -> (ModelRegistry, Vec<VersionId>) {
    let config = mlp_config(ds);
    let base = Mlp::init(&config, 7);
    let mut reg = ModelRegistry::new(config);
    let v0 = reg.register("base/v1", &base, Precision::F32);
    let v1 = reg.register(
        "tenant1/v1",
        &adapter_variant(&base, 1, 1e-3),
        Precision::F32,
    );
    let v2 = reg.register("pinned/v1", &base, Precision::F32);
    (reg, vec![v0, v1, v2])
}

#[test]
fn every_tenant_is_served_its_own_version_bit_exactly() {
    let ds = tiny_dataset();
    let (reg, tenants) = three_tenant_registry(&ds);
    let pool = &ds.test.features;
    let spec = FleetLoadSpec::steady(300, 600.0, 3, 1.0, pool.rows());
    let requests = fleet_stream(11, &spec);
    let topo = ClusterTopology::ethernet(1, 4);
    let config = FleetConfig::paper_defaults(32, 0.050);
    let outcome = serve_fleet(
        &reg,
        &tenants,
        &scaled(homogeneous_server(3)),
        &topo,
        pool,
        &requests,
        &FaultPlan::new(),
        &config,
    );
    assert_eq!(outcome.lost, 0);
    assert_eq!(outcome.served, requests.len());
    // Tenants 0 and 2 pin identical content: the registry must have
    // materialized one model and stored one set of layers for them.
    assert_eq!(outcome.dedup.versions, 3);
    assert!(
        outcome.dedup.ratio() > 1.3,
        "dedup ratio {}",
        outcome.dedup.ratio()
    );
    // Every request's predictions match direct inference on its tenant's
    // registered version — multi-model batching never crosses weights.
    for r in &requests {
        let x = pool.select_rows(&[r.pool_row]);
        let direct = reg
            .model(tenants[r.tenant as usize])
            .predict_topk(&x, config.k);
        assert_eq!(
            outcome.prediction(r.id).unwrap(),
            &direct[..],
            "request {} (tenant {}) served ≠ direct",
            r.id,
            r.tenant
        );
    }
}

#[test]
fn fleet_outcome_is_thread_count_invariant_with_everything_armed() {
    let ds = tiny_dataset();
    let (reg, tenants) = three_tenant_registry(&ds);
    let pool = &ds.test.features;
    let spec = FleetLoadSpec {
        n: 500,
        base_rps: 1.5e7,
        diurnal_amplitude: 0.5,
        diurnal_period_s: 50e-6,
        burst_factor: 2.0,
        burst_every_s: 30e-6,
        burst_len_s: 8e-6,
        tenants: 3,
        zipf_s: 1.1,
        pool_rows: pool.rows(),
    };
    let requests = fleet_stream(3, &spec);
    let topo = ClusterTopology::ethernet(3, 2);
    let profiles = scaled(homogeneous_server(6));
    let plan = FaultPlan::random(9, profiles.len(), 6);
    let mut config = FleetConfig::paper_defaults(16, 0.020)
        .with_cache(64)
        .hedged(0.9)
        .autoscaled(2);
    config.window_dispatches = 8;
    config.boot_delay_s = 2e-6;

    let run = || {
        serve_fleet(
            &reg, &tenants, &profiles, &topo, pool, &requests, &plan, &config,
        )
    };
    asgd_tensor::parallel::override_threads(1);
    let single = run();
    asgd_tensor::parallel::override_threads(8);
    let eight = run();
    asgd_tensor::parallel::override_threads(0);

    assert_eq!(single.records, eight.records, "schedules diverged");
    assert_eq!(
        single.predictions, eight.predictions,
        "predictions diverged"
    );
    assert_eq!(single.fault_log, eight.fault_log, "fault logs diverged");
    assert_eq!(single.trajectory, eight.trajectory, "autoscale diverged");
    assert_eq!(single.cache, eight.cache, "cache stats diverged");
    assert_eq!(single.hedge, eight.hedge, "hedge stats diverged");
    assert_eq!(
        single.makespan_s.to_bits(),
        eight.makespan_s.to_bits(),
        "makespans diverged"
    );
    for (a, b) in single.replicas.iter().zip(&eight.replicas) {
        assert_eq!(a.served, b.served);
        assert_eq!(a.device_seconds.to_bits(), b.device_seconds.to_bits());
    }
}

#[test]
fn the_zipf_head_hits_the_cache_and_replays_exact_predictions() {
    let ds = tiny_dataset();
    let (reg, tenants) = three_tenant_registry(&ds);
    let pool = &ds.test.features;
    // Zipf s=1.1 over the pool: the head dominates, so a modest cache
    // should absorb the majority of lookups once warm.
    let spec = FleetLoadSpec::steady(1500, 800.0, 3, 1.1, pool.rows());
    let requests = fleet_stream(21, &spec);
    let topo = ClusterTopology::ethernet(1, 4);
    let config = FleetConfig::paper_defaults(32, 0.050).with_cache(256);
    let outcome = serve_fleet(
        &reg,
        &tenants,
        &scaled(homogeneous_server(4)),
        &topo,
        pool,
        &requests,
        &FaultPlan::new(),
        &config,
    );
    assert_eq!(outcome.lost, 0);
    assert!(
        outcome.cache.hit_rate() > 0.5,
        "hit rate {} too low at s=1.1",
        outcome.cache.hit_rate()
    );
    assert_eq!(
        outcome.cache.hits + outcome.cache.misses,
        requests.len() as u64
    );
    let mut hits = 0usize;
    for r in &requests {
        let rec = outcome.records[r.id as usize].unwrap();
        if rec.cache_hit {
            hits += 1;
            assert_eq!(rec.replica, None);
            assert!((rec.latency() - config.cache_latency_s).abs() < 1e-12);
            // A replayed prediction is still the tenant's own model, bit
            // for bit.
            let x = pool.select_rows(&[r.pool_row]);
            let direct = reg
                .model(tenants[r.tenant as usize])
                .predict_topk(&x, config.k);
            assert_eq!(outcome.prediction(r.id).unwrap(), &direct[..]);
        }
    }
    assert_eq!(hits as u64, outcome.cache.hits);
    // Tenants 0 and 2 share content: hits must cross between them, which
    // only works because the key is the content signature, not the tenant.
    assert!(
        requests
            .iter()
            .any(|r| r.tenant == 2 && outcome.records[r.id as usize].unwrap().cache_hit),
        "the pinned tenant should profit from the base tenant's cache fills"
    );
}

#[test]
fn hedged_requests_race_consistently_and_reclaim_cancelled_time() {
    let ds = tiny_dataset();
    let (reg, tenants) = three_tenant_registry(&ds);
    let pool = &ds.test.features;
    // Oversubscribed two-tier fleet: waits build, the p90 threshold arms,
    // stragglers hedge onto whichever replica frees first.
    let spec = FleetLoadSpec::steady(800, 2.5e7, 3, 1.0, pool.rows());
    let requests = fleet_stream(5, &spec);
    let topo = ClusterTopology::ethernet(2, 2);
    let mut config = FleetConfig::paper_defaults(16, 0.020).hedged(0.9);
    config.hedge_min_obs = 32;
    let outcome = serve_fleet(
        &reg,
        &tenants,
        &scaled(two_tier_server(2, 2, 0.25)),
        &topo,
        pool,
        &requests,
        &FaultPlan::new(),
        &config,
    );
    assert_eq!(outcome.lost, 0);
    assert!(outcome.hedge.issued > 0, "no hedge ever fired");
    assert_eq!(
        outcome.hedge.wins + outcome.hedge.losses,
        outcome.hedge.issued
    );
    let hedged = outcome
        .records
        .iter()
        .flatten()
        .filter(|r| r.hedged)
        .count() as u64;
    assert_eq!(hedged, outcome.hedge.issued);
    if outcome.hedge.losses > 0 {
        assert!(
            outcome.hedge.cancelled_s >= 0.0,
            "cancellation cannot reclaim negative time"
        );
    }
    // Timing stays causally ordered for every record, hedged or not.
    for rec in outcome.records.iter().flatten() {
        assert!(rec.dispatched >= rec.arrival);
        assert!(rec.completed > rec.dispatched || rec.cache_hit);
    }
    // Predictions are untouched by hedging — still the tenant's model.
    for r in requests.iter().take(100) {
        let x = pool.select_rows(&[r.pool_row]);
        let direct = reg
            .model(tenants[r.tenant as usize])
            .predict_topk(&x, config.k);
        assert_eq!(outcome.prediction(r.id).unwrap(), &direct[..]);
    }
}

#[test]
fn autoscaling_rides_the_burst_and_undercuts_static_max_cost() {
    let ds = tiny_dataset();
    let (reg, tenants) = three_tenant_registry(&ds);
    let pool = &ds.test.features;
    let spec = FleetLoadSpec {
        n: 1200,
        base_rps: 8.0e6,
        diurnal_amplitude: 0.7,
        diurnal_period_s: 60e-6,
        burst_factor: 2.5,
        burst_every_s: 40e-6,
        burst_len_s: 8e-6,
        tenants: 3,
        zipf_s: 1.0,
        pool_rows: pool.rows(),
    };
    let requests = fleet_stream(13, &spec);
    let topo = ClusterTopology::ethernet(3, 2);
    let profiles = scaled(homogeneous_server(6));
    let mut auto_cfg = FleetConfig::paper_defaults(8, 0.050).autoscaled(1);
    auto_cfg.window_dispatches = 8;
    auto_cfg.autoscale_target_depth = 4.0;
    auto_cfg.boot_delay_s = 2e-6;
    let auto_run = serve_fleet(
        &reg,
        &tenants,
        &profiles,
        &topo,
        pool,
        &requests,
        &FaultPlan::new(),
        &auto_cfg,
    );
    let static_cfg = FleetConfig::paper_defaults(8, 0.050).static_replicas(6);
    let static_run = serve_fleet(
        &reg,
        &tenants,
        &profiles,
        &topo,
        pool,
        &requests,
        &FaultPlan::new(),
        &static_cfg,
    );
    assert_eq!(auto_run.lost, 0);
    assert_eq!(static_run.lost, 0);
    assert!(!auto_run.trajectory.is_empty(), "no autoscale decisions");
    let peak = auto_run
        .trajectory
        .iter()
        .map(|d| d.replicas)
        .max()
        .unwrap();
    assert!(
        peak > 1,
        "the controller never scaled out: {:?}",
        auto_run.trajectory
    );
    // Scale-out lands round-robin across servers: slot i on server i mod 3.
    for (i, r) in auto_run.replicas.iter().enumerate() {
        assert_eq!(r.server, i % 3);
    }
    // The elastic fleet pays for fewer device-seconds than full static
    // provisioning of the same slots.
    assert!(
        auto_run.device_seconds() < static_run.device_seconds(),
        "auto {} ≥ static-max {}",
        auto_run.device_seconds(),
        static_run.device_seconds()
    );
    // Static provisioning pays all six slots for the whole run.
    for r in &static_run.replicas {
        assert!((r.device_seconds - static_run.makespan_s).abs() < 1e-12);
    }
}

#[test]
fn device_loss_in_a_fleet_loses_zero_requests() {
    let ds = tiny_dataset();
    let (reg, tenants) = three_tenant_registry(&ds);
    let pool = &ds.test.features;
    let spec = FleetLoadSpec::steady(400, 700.0, 3, 1.0, pool.rows());
    let requests = fleet_stream(7, &spec);
    let topo = ClusterTopology::ethernet(2, 2);
    let plan = FaultPlan::new().device_loss(1, 3, 2);
    let config = FleetConfig::paper_defaults(32, 0.050).static_replicas(4);
    let outcome = serve_fleet(
        &reg,
        &tenants,
        &scaled(homogeneous_server(4)),
        &topo,
        pool,
        &requests,
        &plan,
        &config,
    );
    assert_eq!(outcome.lost, 0, "device loss must lose zero requests");
    assert!(outcome.records.iter().all(Option::is_some));
    assert!(!outcome.replicas[2].alive);
    assert!(
        outcome.fault_log.iter().any(|l| l.contains("slot2 lost")),
        "loss should be logged: {:?}",
        outcome.fault_log
    );
    // The dead slot stopped being paid for at the loss, not at run end.
    assert!(outcome.replicas[2].device_seconds < outcome.makespan_s);
    for r in requests.iter().take(60) {
        let x = pool.select_rows(&[r.pool_row]);
        let direct = reg
            .model(tenants[r.tenant as usize])
            .predict_topk(&x, config.k);
        assert_eq!(outcome.prediction(r.id).unwrap(), &direct[..]);
    }
}
