//! Integration contracts of the serving engine: checkpoint→serve handoff,
//! thread-count invariance, zero-loss degradation, and the SLO controller's
//! tail-latency win over fixed-size micro-batching.

use asgd_core::{algorithms, load_model, trainer::RunConfig, trainer::Trainer};
use asgd_data::{generate, DatasetSpec, XmlDataset};
use asgd_gpusim::profile::{homogeneous_server, two_tier_server};
use asgd_gpusim::{DeviceProfile, FaultPlan};
use asgd_model::{Mlp, MlpConfig};
use asgd_serve::{open_loop_stream, serve, Request, ServeConfig, ServeOutcome};
use asgd_sparse::CsrMatrix;

const HIDDEN: usize = 24;

fn tiny_dataset() -> XmlDataset {
    generate(&DatasetSpec::amazon_670k(0.001), 42 ^ 0xD5)
}

fn mlp_config(ds: &XmlDataset) -> MlpConfig {
    MlpConfig {
        num_features: ds.num_features,
        hidden: HIDDEN,
        num_classes: ds.num_labels,
    }
}

/// Trains two mega-batches, round-trips the result through the serveable
/// checkpoint format, and returns the loaded model.
fn train_and_reload(ds: &XmlDataset) -> Mlp {
    let mut config = RunConfig::paper_defaults(32, 8);
    config.hidden = HIDDEN;
    config.base_lr = 0.1;
    config.seed = 42;
    config.mega_batch_limit = Some(2);
    config.overhead_scale = 0.001;
    let result = Trainer::new(algorithms::adaptive_sgd(), homogeneous_server(2), config).run(ds);
    let state = result.final_state.expect("gpu trainer keeps a snapshot");
    load_model(state.export_model(&mlp_config(ds))).expect("checkpoint decodes")
}

fn scaled(profiles: Vec<DeviceProfile>) -> Vec<DeviceProfile> {
    profiles
        .into_iter()
        .map(|p| p.with_overhead_scale(0.001))
        .collect()
}

fn run(
    model: &Mlp,
    profiles: &[DeviceProfile],
    pool: &CsrMatrix,
    requests: &[Request],
    plan: &FaultPlan,
    config: &ServeConfig,
) -> ServeOutcome {
    serve(model, profiles, pool, requests, plan, config)
}

#[test]
fn checkpoint_to_serve_roundtrip_is_bit_identical() {
    let ds = tiny_dataset();
    let model = train_and_reload(&ds);
    let pool = &ds.test.features;
    let requests = open_loop_stream(11, 200, 400.0, pool.rows());
    let config = ServeConfig::paper_defaults(32, 0.050);
    let outcome = run(
        &model,
        &scaled(two_tier_server(1, 1, 0.5)),
        pool,
        &requests,
        &FaultPlan::new(),
        &config,
    );
    assert_eq!(outcome.served, requests.len());
    assert_eq!(outcome.lost, 0);
    // Every served prediction must match direct inference on the same row —
    // bit for bit, independent of which replica served it and in which
    // micro-batch it rode (row-wise kernels make batch composition
    // irrelevant to a row's values).
    for r in &requests {
        let x = pool.select_rows(&[r.pool_row]);
        let direct = model.predict_topk(&x, config.k);
        assert_eq!(
            outcome.prediction(r.id).unwrap(),
            &direct[..],
            "request {} served ≠ direct inference",
            r.id
        );
    }
}

#[test]
fn bf16_serving_matches_the_quantized_model_exactly() {
    let ds = tiny_dataset();
    let model = train_and_reload(&ds);
    let pool = &ds.test.features;
    let requests = open_loop_stream(11, 120, 400.0, pool.rows());
    let config = ServeConfig::paper_defaults(32, 0.050).bf16();
    let outcome = run(
        &model,
        &scaled(two_tier_server(1, 1, 0.5)),
        pool,
        &requests,
        &FaultPlan::new(),
        &config,
    );
    assert_eq!(outcome.lost, 0);
    // bf16 serving is direct inference on the once-quantized model — the
    // single round point is the streamed checkpoint, nothing downstream.
    let reference = model.quantized(asgd_tensor::Precision::Bf16);
    for r in &requests {
        let x = pool.select_rows(&[r.pool_row]);
        let direct = reference.predict_topk(&x, config.k);
        assert_eq!(
            outcome.prediction(r.id).unwrap(),
            &direct[..],
            "request {} served ≠ quantized direct inference",
            r.id
        );
    }
}

#[test]
fn serve_outcome_is_thread_count_invariant() {
    let ds = tiny_dataset();
    let model = Mlp::init(&mlp_config(&ds), 7);
    let pool = &ds.test.features;
    let requests = open_loop_stream(3, 400, 800.0, pool.rows());
    let profiles = scaled(two_tier_server(2, 2, 0.5));
    let plan = FaultPlan::random(9, profiles.len(), 6);
    let config = ServeConfig::paper_defaults(32, 0.020);

    asgd_tensor::parallel::override_threads(1);
    let single = run(&model, &profiles, pool, &requests, &plan, &config);
    asgd_tensor::parallel::override_threads(8);
    let eight = run(&model, &profiles, pool, &requests, &plan, &config);
    asgd_tensor::parallel::override_threads(0);

    assert_eq!(single.records, eight.records, "schedules diverged");
    assert_eq!(
        single.predictions, eight.predictions,
        "predictions diverged"
    );
    assert_eq!(single.fault_log, eight.fault_log, "fault logs diverged");
    assert_eq!(
        single.makespan_s.to_bits(),
        eight.makespan_s.to_bits(),
        "makespans diverged"
    );
    for (a, b) in single.replicas.iter().zip(&eight.replicas) {
        assert_eq!(a.trajectory, b.trajectory, "trajectories diverged");
        assert_eq!(a.served, b.served);
    }
    let (pa, pb) = (single.fleet_latency(), eight.fleet_latency());
    assert_eq!(
        pa.p99.value().unwrap().to_bits(),
        pb.p99.value().unwrap().to_bits(),
        "fleet p99 diverged"
    );
}

#[test]
fn device_loss_mid_run_loses_zero_requests() {
    let ds = tiny_dataset();
    let model = Mlp::init(&mlp_config(&ds), 8);
    let pool = &ds.test.features;
    let requests = open_loop_stream(5, 300, 600.0, pool.rows());
    let profiles = scaled(homogeneous_server(4));
    // Kill gpu 2 in the second controller window, mid-window.
    let plan = FaultPlan::new().device_loss(1, 3, 2);
    let config = ServeConfig::paper_defaults(32, 0.020);
    let outcome = run(&model, &profiles, pool, &requests, &plan, &config);

    assert_eq!(outcome.lost, 0, "device loss must lose zero requests");
    assert_eq!(outcome.served, requests.len());
    assert!(outcome.records.iter().all(Option::is_some));
    assert!(!outcome.replicas[2].alive, "gpu 2 should be dead");
    assert_eq!(
        outcome.replicas.iter().filter(|r| r.alive).count(),
        3,
        "three survivors"
    );
    assert!(
        outcome.fault_log.iter().any(|l| l.contains("gpu2 lost")),
        "loss should be logged: {:?}",
        outcome.fault_log
    );
    // The survivors picked up the dead replica's share.
    let survivor_served: usize = outcome
        .replicas
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 2)
        .map(|(_, r)| r.served)
        .sum();
    assert_eq!(survivor_served + outcome.replicas[2].served, requests.len());
    // Predictions still match direct inference — in-flight work was drained,
    // not dropped.
    for r in requests.iter().take(50) {
        let x = pool.select_rows(&[r.pool_row]);
        assert_eq!(
            outcome.prediction(r.id).unwrap(),
            &model.predict_topk(&x, config.k)[..]
        );
    }
}

#[test]
fn losing_the_last_survivor_is_refused() {
    let ds = tiny_dataset();
    let model = Mlp::init(&mlp_config(&ds), 9);
    let pool = &ds.test.features;
    let requests = open_loop_stream(6, 120, 600.0, pool.rows());
    let profiles = scaled(homogeneous_server(2));
    let plan = FaultPlan::new().device_loss(0, 1, 0).device_loss(0, 5, 1);
    let outcome = run(
        &model,
        &profiles,
        pool,
        &requests,
        &plan,
        &ServeConfig::paper_defaults(32, 0.020),
    );
    assert_eq!(outcome.lost, 0);
    assert_eq!(outcome.replicas.iter().filter(|r| r.alive).count(), 1);
    assert!(
        outcome.fault_log.iter().any(|l| l.contains("REFUSED")),
        "refusal should be logged: {:?}",
        outcome.fault_log
    );
}

#[test]
fn stall_and_speed_faults_keep_the_run_deterministic() {
    let ds = tiny_dataset();
    let model = Mlp::init(&mlp_config(&ds), 10);
    let pool = &ds.test.features;
    let requests = open_loop_stream(7, 200, 600.0, pool.rows());
    let profiles = scaled(homogeneous_server(3));
    let plan = FaultPlan::new()
        .speed_change(0, 2, 1, 0.3)
        .stall(1, 0, 0, 0.01)
        .speed_change(2, 4, 1, 1.0);
    let config = ServeConfig::paper_defaults(32, 0.020);
    let a = run(&model, &profiles, pool, &requests, &plan, &config);
    let b = run(&model, &profiles, pool, &requests, &plan, &config);
    assert_eq!(a.lost, 0);
    assert_eq!(a.records, b.records);
    assert_eq!(a.fault_log, b.fault_log);
    assert!(a.fault_log.iter().any(|l| l.contains("speed")));
    assert!(a.fault_log.iter().any(|l| l.contains("stalled")));
}

#[test]
fn outcome_accessors_are_total() {
    let ds = tiny_dataset();
    let model = Mlp::init(&mlp_config(&ds), 4);
    let pool = &ds.test.features;
    let config = ServeConfig::paper_defaults(32, 0.020);
    // An empty run must not divide by zero or panic anywhere.
    let empty = run(
        &model,
        &scaled(homogeneous_server(2)),
        pool,
        &[],
        &FaultPlan::new(),
        &config,
    );
    assert_eq!(empty.served, 0);
    assert_eq!(empty.throughput_rps(), 0.0);
    assert_eq!(empty.prediction(0), None);
    // An unknown id on a real run is a lookup miss, not a panic.
    let requests = open_loop_stream(2, 40, 600.0, pool.rows());
    let outcome = run(
        &model,
        &scaled(homogeneous_server(2)),
        pool,
        &requests,
        &FaultPlan::new(),
        &config,
    );
    assert!(outcome.prediction(39).is_some());
    assert_eq!(outcome.prediction(40), None);
    assert_eq!(outcome.prediction(u32::MAX), None);
    assert!(outcome.throughput_rps() > 0.0);
}

#[test]
fn adaptive_micro_batching_shrinks_p99_on_a_two_tier_fleet() {
    // The serving testbed where micro-batch size is the latency knob: a
    // wide-head classifier (many classes, tiny hidden layer) makes
    // per-request softmax/top-k cost dominate per-batch flat cost, so a slow
    // device greedily draining full-size batches inflates exactly those
    // requests' tail latency. Offered load sits near aggregate capacity so
    // backlog bursts actually form.
    let ds = generate(&DatasetSpec::amazon_670k(0.03), 42 ^ 0xD5);
    let cfg = MlpConfig {
        num_features: ds.num_features,
        hidden: 8,
        num_classes: ds.num_labels,
    };
    let model = Mlp::init(&cfg, 12);
    let pool = &ds.test.features;
    let profiles: Vec<_> = two_tier_server(2, 2, 0.25)
        .into_iter()
        .map(|p| p.with_overhead_scale(0.05))
        .collect();
    let requests = open_loop_stream(13, 1200, 4.0e6, pool.rows());
    let config = ServeConfig::paper_defaults(64, 0.000_015);
    let adaptive = run(
        &model,
        &profiles,
        pool,
        &requests,
        &FaultPlan::new(),
        &config,
    );
    let fixed = run(
        &model,
        &profiles,
        pool,
        &requests,
        &FaultPlan::new(),
        &config.clone().fixed_batch(),
    );
    assert_eq!(adaptive.lost, 0);
    assert_eq!(fixed.lost, 0);
    let (pa, pf) = (adaptive.fleet_latency(), fixed.fleet_latency());
    let (a99, f99) = (pa.p99.value().unwrap(), pf.p99.value().unwrap());
    assert!(
        a99 < 0.95 * f99,
        "adaptive p99 {a99:.6}s should clearly beat fixed p99 {f99:.6}s"
    );
    // The controller actually moved: the slow replicas shrank below b_max.
    for slow in [2usize, 3] {
        assert!(
            adaptive.replicas[slow].trajectory.iter().any(|&b| b < 64),
            "slow replica {slow} never shrank: {:?}",
            adaptive.replicas[slow].trajectory
        );
    }
    // The fixed baseline never moves.
    assert!(fixed
        .replicas
        .iter()
        .all(|r| r.trajectory.iter().all(|&b| b == 64)));
}
