//! The serving engine: dynamic dispatch + adaptive micro-batching over
//! simulated heterogeneous devices.
//!
//! One model replica runs per simulated GPU. A single scheduler loop owns
//! every *decision*: it admits arrivals into a central FIFO queue, hands the
//! next micro-batch to whichever replica's virtual clock frees first (the
//! paper's one-batch-at-a-time dynamic dispatch, repurposed for inference),
//! charges the batch's forward kernels to that device, and records
//! per-request latency. Decisions consume only virtual clocks and seeded
//! state, so the entire schedule — every dispatch, latency, and fault
//! reaction — is a pure function of `(request seed, fault seed)` regardless
//! of `ASGD_THREADS`.
//!
//! The *math* runs for real off the decision path: each replica has a worker
//! thread owning a reused [`Workspace`], sharing the read-only model, and
//! predictions land in an id-indexed buffer — so the numeric results are
//! independent of worker completion order, and bit-identical at any thread
//! count because every tensor kernel is.
//!
//! Degradation: requests wait in the central queue, never on a device. A
//! [`FaultKind::DeviceLoss`] therefore loses nothing — the dead replica
//! simply stops being dispatched to and the queue drains through survivors.
//! Its worker drains already-shipped batches before exiting (the channel is
//! FIFO), so even in-flight results are kept. Loss of the last survivor is
//! refused, as in the chaos trainer.

use crate::slo::SloController;
use crate::stream::Request;
use asgd_core::ScalingParams;
use asgd_gpusim::device::build_server;
use asgd_gpusim::{DeviceProfile, FaultEvent, FaultKind, FaultPlan, SimTime};
use asgd_model::workload::inference_kernels;
use asgd_model::{Mlp, Workspace};
use asgd_sparse::CsrMatrix;
use asgd_stats::{percentile, Histogram, P2Quantile};
use asgd_tensor::Precision;
use std::collections::VecDeque;
use std::sync::mpsc;

/// Histogram bins of the latency distribution (per replica and fleet).
const HIST_BINS: usize = 64;
/// Histogram upper bound, in SLO multiples (tail beyond it lands in the
/// saturating overflow bucket).
const HIST_SLO_SPAN: f64 = 8.0;

/// Serving-run parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Top-k classes returned per request (capped at `num_classes`).
    pub k: usize,
    /// Per-request latency SLO, seconds (arrival → completion).
    pub slo_s: f64,
    /// Micro-batch bounds and step, in request-count units (the paper's
    /// `b_min = b_max/8`, `β = b_min/2` defaults apply unchanged).
    pub scaling: ScalingParams,
    /// `true` = adaptive micro-batching (the SLO controller); `false` =
    /// fixed micro-batches of `b_max` (the baseline).
    pub adaptive: bool,
    /// Controller window length, in fleet-wide dispatches.
    pub window_dispatches: usize,
    /// Seed of the devices' jitter streams.
    pub device_seed: u64,
    /// Storage precision the replica weights were streamed at.
    /// [`Precision::F32`] serves the checkpoint exactly;
    /// [`Precision::Bf16`] models a bf16-streamed checkpoint — weights are
    /// narrowed once (round-to-nearest-even) and widened exactly, so every
    /// replica serves the identically-rounded model and all inference math
    /// stays f32.
    pub precision: Precision,
}

impl ServeConfig {
    /// Paper-default config: adaptive, `b_max`-derived scaling bounds.
    pub fn paper_defaults(b_max: usize, slo_s: f64) -> Self {
        Self {
            k: 5,
            slo_s,
            scaling: ScalingParams::paper_defaults(b_max),
            adaptive: true,
            window_dispatches: 16,
            device_seed: 0x5E12_EE00,
            precision: Precision::F32,
        }
    }

    /// The same config serving bf16-streamed weights.
    pub fn bf16(mut self) -> Self {
        self.precision = Precision::Bf16;
        self
    }

    /// The same config with adaptive batching disabled (fixed `b_max`).
    pub fn fixed_batch(mut self) -> Self {
        self.adaptive = false;
        self
    }
}

/// Timing record of one served request (all in simulated seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// Arrival at the admission queue.
    pub arrival: f64,
    /// Dispatch to a replica (queueing ends).
    pub dispatched: f64,
    /// Completion on the device.
    pub completed: f64,
    /// Serving replica index.
    pub replica: usize,
    /// Size of the micro-batch this request rode in.
    pub batch: usize,
}

impl RequestRecord {
    /// End-to-end latency (the SLO'd quantity).
    pub fn latency(&self) -> f64 {
        self.completed - self.arrival
    }

    /// Time spent waiting in the admission queue.
    pub fn queueing(&self) -> f64 {
        self.dispatched - self.arrival
    }

    /// Time spent computing on the device.
    pub fn compute(&self) -> f64 {
        self.completed - self.dispatched
    }
}

/// Streaming latency statistics of one replica (or, merged, of the fleet).
#[derive(Debug, Clone)]
pub struct LatencyStats {
    /// Median estimator.
    pub p50: P2Quantile,
    /// 95th-percentile estimator.
    pub p95: P2Quantile,
    /// 99th-percentile estimator.
    pub p99: P2Quantile,
    /// Latency histogram over `[0, hi)`.
    pub hist: Histogram,
    hi: f64,
}

impl LatencyStats {
    /// Empty statistics with a histogram over `[0, hi)` seconds.
    pub fn new(hi: f64) -> Self {
        Self {
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            hist: Histogram::new(0.0, hi, HIST_BINS),
            hi,
        }
    }

    /// Records one latency observation (seconds).
    pub fn record(&mut self, latency_s: f64) {
        self.p50.record(latency_s);
        self.p95.record(latency_s);
        self.p99.record(latency_s);
        self.hist.record(latency_s);
    }

    /// Observations recorded.
    pub fn count(&self) -> usize {
        self.p99.count()
    }

    /// Folds another replica's statistics into this one. P² merging is
    /// order-dependent — callers MUST fold replicas in ascending replica
    /// index (as [`ServeOutcome::fleet_latency`] does), never in completion
    /// order, or the fleet quantiles stop being thread-count independent.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.p50.merge(&other.p50);
        self.p95.merge(&other.p95);
        self.p99.merge(&other.p99);
        self.hist.merge(&other.hist);
    }
}

/// Per-replica serving summary.
#[derive(Debug, Clone)]
pub struct ReplicaReport {
    /// Device name (from the profile).
    pub name: String,
    /// Still alive at end of run.
    pub alive: bool,
    /// Requests served.
    pub served: usize,
    /// Micro-batches executed.
    pub batches: usize,
    /// Micro-batch size at end of run.
    pub final_b: usize,
    /// Micro-batch size after each controller window (the trajectory the
    /// acceptance report prints).
    pub trajectory: Vec<usize>,
    /// Latency statistics of the requests this replica served.
    pub stats: LatencyStats,
}

/// Everything a serving run produced.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Per-request timing, indexed by request id (`None` = never served;
    /// the zero-loss guarantee says there are none).
    pub records: Vec<Option<RequestRecord>>,
    /// Row-major `n_requests × k_eff` predicted class ids, indexed by
    /// request id — independent of dispatch and completion order.
    pub predictions: Vec<u32>,
    /// Classes returned per request (`min(k, num_classes)`).
    pub k_eff: usize,
    /// Per-replica summaries, by replica index.
    pub replicas: Vec<ReplicaReport>,
    /// Human-readable log of every fault applied (or refused), in firing
    /// order.
    pub fault_log: Vec<String>,
    /// Completion time of the last request, seconds.
    pub makespan_s: f64,
    /// Requests served.
    pub served: usize,
    /// Requests generated but never served (zero by construction; recorded
    /// so tests and reports can assert it).
    pub lost: usize,
}

impl ServeOutcome {
    /// Fleet-wide latency statistics: per-replica collectors folded in
    /// ascending replica index — the deterministic merge order that keeps
    /// fleet quantiles independent of thread count and completion order.
    pub fn fleet_latency(&self) -> LatencyStats {
        let hi = self.replicas.first().map_or(1.0, |r| r.stats.hi);
        let mut fleet = LatencyStats::new(hi);
        for r in &self.replicas {
            fleet.merge(&r.stats);
        }
        fleet
    }

    /// Served requests per simulated second.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.served as f64 / self.makespan_s
        } else {
            0.0
        }
    }

    /// The predictions of one request (`k_eff` class ids), or `None` for an
    /// id the run never generated — an unknown id is a caller-side lookup
    /// miss, not a panic.
    pub fn prediction(&self, id: u32) -> Option<&[u32]> {
        let lo = (id as usize).checked_mul(self.k_eff)?;
        self.predictions.get(lo..lo + self.k_eff)
    }
}

/// One replica's scheduler-side state.
struct ReplicaState {
    device: asgd_gpusim::Device,
    controller: SloController,
    alive: bool,
    served: usize,
    batches: usize,
    window_lat: Vec<f64>,
    trajectory: Vec<usize>,
    stats: LatencyStats,
    tx: Option<mpsc::Sender<WorkItem>>,
}

/// A micro-batch shipped to a replica worker.
struct WorkItem {
    x: CsrMatrix,
    ids: Vec<u32>,
}

/// Applies one due fault event. `anchor` is the scheduler's current virtual
/// time — speed changes take effect from there, never retroactively.
fn apply_fault(
    replicas: &mut [ReplicaState],
    e: FaultEvent,
    anchor: f64,
    queued: usize,
    log: &mut Vec<String>,
) {
    let at = format!("w{}+{}", e.at_mega, e.after_batches);
    match e.kind {
        FaultKind::SpeedChange { factor } => {
            if replicas[e.gpu].alive {
                replicas[e.gpu]
                    .device
                    .schedule_speed_factor(SimTime(anchor), factor);
                log.push(format!("{at}: gpu{} speed -> {factor:.2}", e.gpu));
            }
        }
        FaultKind::Stall { seconds } => {
            if replicas[e.gpu].alive {
                let now = replicas[e.gpu].device.now();
                replicas[e.gpu].device.advance_to(now + seconds);
                log.push(format!("{at}: gpu{} stalled {seconds:.3}s", e.gpu));
            }
        }
        FaultKind::DeviceLoss => {
            let survivors = replicas.iter().filter(|r| r.alive).count();
            if !replicas[e.gpu].alive {
                // Already dead — nothing to do.
            } else if survivors <= 1 {
                log.push(format!("{at}: gpu{} loss REFUSED (last survivor)", e.gpu));
            } else {
                replicas[e.gpu].alive = false;
                // Dropping the sender lets the worker drain its in-flight
                // batches (channel is FIFO) and exit; results are kept.
                replicas[e.gpu].tx = None;
                log.push(format!(
                    "{at}: gpu{} lost; {queued} queued re-dispatched to {} survivors",
                    e.gpu,
                    survivors - 1
                ));
            }
        }
        // Merge-OOM is a training-merge fault; `FaultPlan::due` never
        // returns it and serving has no merge phase to degrade.
        FaultKind::MergeOom => {}
        // Cluster faults come only from `FaultPlan::random_cluster`, which
        // the serving engine never uses: a serving fleet is a flat replica
        // pool with no server grouping to lose or inter-node link to stall.
        FaultKind::ServerLoss | FaultKind::InterNodeStall { .. } => {}
    }
}

/// The alive replica whose virtual clock frees first (ties to the lowest
/// index — the same deterministic rule as the training dispatcher).
fn pick_replica(replicas: &[ReplicaState]) -> usize {
    let mut best = usize::MAX;
    let mut best_t = f64::INFINITY;
    for (i, r) in replicas.iter().enumerate() {
        if r.alive && r.device.now().secs() < best_t {
            best_t = r.device.now().secs();
            best = i;
        }
    }
    assert!(best != usize::MAX, "no alive replica to dispatch to");
    best
}

/// Runs a serving session: drains `requests` (rows of `pool`) through one
/// replica of `model` per device in `profiles`, under `plan`'s faults
/// (reinterpreted at `(window, dispatch ordinal)` points), with adaptive
/// micro-batching per `config`.
///
/// The returned outcome — every latency, trajectory entry, and prediction —
/// is a pure function of the inputs, bit-identical at any `ASGD_THREADS`.
///
/// # Panics
/// Panics on an empty server, an architecture/pool width mismatch, or a
/// request referencing a row outside the pool.
pub fn serve(
    model: &Mlp,
    profiles: &[DeviceProfile],
    pool: &CsrMatrix,
    requests: &[Request],
    plan: &FaultPlan,
    config: &ServeConfig,
) -> ServeOutcome {
    assert!(!profiles.is_empty(), "need at least one device");
    assert!(config.k >= 1, "k must be at least 1");
    assert!(config.window_dispatches >= 1, "window must be non-empty");
    assert_eq!(
        pool.cols(),
        model.config().num_features,
        "pool/model architecture mismatch"
    );
    assert!(
        requests.iter().all(|r| r.pool_row < pool.rows()),
        "request outside the pool"
    );

    // Serve the weights at the configured streaming precision. The f32 path
    // borrows the caller's model untouched (golden outputs hold bit-exactly);
    // bf16 rounds every weight once up front — the checkpoint the replicas
    // "received" — and all the per-request math below stays f32.
    let quantized_model;
    let model = match config.precision {
        Precision::F32 => model,
        Precision::Bf16 => {
            quantized_model = model.quantized(Precision::Bf16);
            &quantized_model
        }
    };

    let n = requests.len();
    let k_eff = config.k.min(model.config().num_classes);
    let hist_hi = config.slo_s * HIST_SLO_SPAN;
    let mut records: Vec<Option<RequestRecord>> = vec![None; n];
    let mut predictions = vec![0u32; n * k_eff];
    let mut fault_log: Vec<String> = Vec::new();

    let mut replicas: Vec<ReplicaState> = build_server(profiles, config.device_seed)
        .into_iter()
        .map(|device| ReplicaState {
            device,
            controller: SloController::new(config.scaling, config.slo_s),
            alive: true,
            served: 0,
            batches: 0,
            window_lat: Vec::new(),
            trajectory: Vec::new(),
            stats: LatencyStats::new(hist_hi),
            tx: None,
        })
        .collect();

    std::thread::scope(|scope| {
        // One inference worker per replica: owns a workspace, shares the
        // read-only model, writes nothing the scheduler reads.
        let (res_tx, res_rx) = mpsc::channel::<(Vec<u32>, Vec<u32>)>();
        for rep in replicas.iter_mut() {
            let (tx, rx) = mpsc::channel::<WorkItem>();
            rep.tx = Some(tx);
            let res = res_tx.clone();
            scope.spawn(move || {
                let mut ws = Workspace::new(model.config());
                let mut out: Vec<u32> = Vec::new();
                for item in rx {
                    let got = model.predict_topk_ws(&item.x, k_eff, &mut ws, &mut out);
                    debug_assert_eq!(got, k_eff);
                    // Receiver outlives senders; a send can only fail if the
                    // whole scope is unwinding already.
                    let _ = res.send((item.ids, out.clone()));
                }
            });
        }
        drop(res_tx);

        // The scheduler loop: single-threaded, virtual-time only.
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut next_arr = 0usize;
        let mut window = 0usize;
        let mut in_window = 0usize;
        let mut batch: Vec<usize> = Vec::new();
        let mut pool_rows: Vec<usize> = Vec::new();

        loop {
            if queue.is_empty() && next_arr >= n {
                break;
            }
            // Fault events due before this dispatch.
            let anchor = replicas[pick_replica(&replicas)].device.now().secs();
            for e in plan.due(window, in_window, false) {
                apply_fault(&mut replicas, e, anchor, queue.len(), &mut fault_log);
            }

            // Dispatch to whichever alive replica frees first, no earlier
            // than the first pending request's arrival (open loop: devices
            // idle until there is work).
            let r = pick_replica(&replicas);
            let free = replicas[r].device.now().secs();
            let first_pending = match queue.front() {
                Some(&q) => requests[q].arrival,
                None => requests[next_arr].arrival,
            };
            let t = free.max(first_pending);
            replicas[r].device.advance_to(SimTime(t));
            while next_arr < n && requests[next_arr].arrival <= t {
                queue.push_back(next_arr);
                next_arr += 1;
            }

            // Cut the micro-batch: up to the replica's adaptive size, only
            // requests that have actually arrived by `t`.
            let b = replicas[r].controller.micro_batch();
            batch.clear();
            while batch.len() < b {
                match queue.front() {
                    Some(&q) if requests[q].arrival <= t => {
                        batch.push(q);
                        queue.pop_front();
                    }
                    _ => break,
                }
            }
            debug_assert!(!batch.is_empty(), "dispatch with nothing arrived");

            // Charge the device the forward kernels this batch costs.
            pool_rows.clear();
            pool_rows.extend(batch.iter().map(|&q| requests[q].pool_row));
            let x = pool.select_rows(&pool_rows);
            let kernels = inference_kernels(model.config(), x.rows(), x.nnz(), k_eff);
            replicas[r].device.execute_all(&kernels);
            let done = replicas[r].device.now().secs();

            for &q in &batch {
                let rec = RequestRecord {
                    arrival: requests[q].arrival,
                    dispatched: t,
                    completed: done,
                    replica: r,
                    batch: batch.len(),
                };
                records[q] = Some(rec);
                replicas[r].window_lat.push(rec.latency());
                replicas[r].stats.record(rec.latency());
            }
            replicas[r].served += batch.len();
            replicas[r].batches += 1;

            // Ship the real math to the replica's worker.
            let ids: Vec<u32> = batch.iter().map(|&q| requests[q].id).collect();
            if let Some(tx) = &replicas[r].tx {
                let _ = tx.send(WorkItem { x, ids });
            }

            in_window += 1;
            if in_window == config.window_dispatches {
                // Boundary sweep: never-reached ordinals fire here, exactly
                // like the trainer's merge-boundary sweep.
                let anchor = replicas[pick_replica(&replicas)].device.now().secs();
                for e in plan.due(window, in_window, true) {
                    apply_fault(&mut replicas, e, anchor, queue.len(), &mut fault_log);
                }
                for rep in replicas.iter_mut().filter(|r| r.alive) {
                    if config.adaptive && !rep.window_lat.is_empty() {
                        let p99 =
                            percentile(&rep.window_lat, 0.99).expect("non-empty window latencies");
                        rep.controller.observe_window(p99);
                    }
                    rep.trajectory.push(rep.controller.micro_batch());
                    rep.window_lat.clear();
                }
                window += 1;
                in_window = 0;
            }
        }

        // Close every worker channel, then drain all results into the
        // id-indexed prediction buffer (order-independent by construction).
        for rep in replicas.iter_mut() {
            rep.tx = None;
        }
        for (ids, out) in res_rx {
            for (j, &id) in ids.iter().enumerate() {
                predictions[id as usize * k_eff..(id as usize + 1) * k_eff]
                    .copy_from_slice(&out[j * k_eff..(j + 1) * k_eff]);
            }
        }
    });

    let served = records.iter().filter(|r| r.is_some()).count();
    let makespan_s = records
        .iter()
        .flatten()
        .map(|r| r.completed)
        .fold(0.0f64, f64::max);
    let replicas = replicas
        .into_iter()
        .map(|rep| ReplicaReport {
            name: rep.device.profile().name.clone(),
            alive: rep.alive,
            served: rep.served,
            batches: rep.batches,
            final_b: rep.controller.micro_batch(),
            trajectory: rep.trajectory,
            stats: rep.stats,
        })
        .collect();
    ServeOutcome {
        records,
        predictions,
        k_eff,
        replicas,
        fault_log,
        makespan_s,
        served,
        lost: n - served,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Seeded per-replica latency samples (distinct distributions so merge
    /// order would actually matter if it were allowed to vary).
    fn replica_samples() -> Vec<Vec<f64>> {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x1A7E);
        (0..4)
            .map(|r| {
                (0..500)
                    .map(|_| (1.0 + r as f64) * 0.010 * rng.gen::<f64>())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn merge_in_ascending_replica_order_is_reproducible() {
        // P² merging is order-dependent; the fleet contract is that callers
        // always fold ascending by replica index. Folding the same replicas
        // ascending must be bit-reproducible run to run…
        let samples = replica_samples();
        let fold_ascending = || {
            let mut fleet = LatencyStats::new(1.0);
            for s in &samples {
                let mut stats = LatencyStats::new(1.0);
                for &l in s {
                    stats.record(l);
                }
                fleet.merge(&stats);
            }
            fleet
        };
        let (a, b) = (fold_ascending(), fold_ascending());
        assert_eq!(
            a.p99.value().unwrap().to_bits(),
            b.p99.value().unwrap().to_bits()
        );
        assert_eq!(
            a.p50.value().unwrap().to_bits(),
            b.p50.value().unwrap().to_bits()
        );
        assert_eq!(a.count(), samples.iter().map(Vec::len).sum::<usize>());
    }

    #[test]
    fn merge_order_matters_which_is_why_the_contract_exists() {
        // …and folding in a different order genuinely changes the estimate —
        // the reason completion-order merging would break thread-count
        // invariance. (The histogram, by contrast, is exactly order-free.)
        let samples = replica_samples();
        let fold = |order: &[usize]| {
            let mut fleet = LatencyStats::new(1.0);
            for &i in order {
                let mut stats = LatencyStats::new(1.0);
                for &l in &samples[i] {
                    stats.record(l);
                }
                fleet.merge(&stats);
            }
            fleet
        };
        let asc = fold(&[0, 1, 2, 3]);
        let desc = fold(&[3, 2, 1, 0]);
        assert_ne!(
            asc.p99.value().unwrap().to_bits(),
            desc.p99.value().unwrap().to_bits(),
            "P² merge should be order-dependent for distinct distributions"
        );
        assert_eq!(asc.hist.bins(), desc.hist.bins(), "histogram is order-free");
    }
}
