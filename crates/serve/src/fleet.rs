//! The multi-tenant fleet engine: registry-backed replicas, prediction
//! cache, hedged requests, and elastic autoscaling in one virtual-time
//! scheduler.
//!
//! This is [`crate::engine::serve`] grown to internet scale. The same
//! architecture invariant holds — a **single scheduler loop owns every
//! decision** (admission, cache lookups, version selection, dispatch,
//! hedging, scaling, faults) and consumes only virtual device clocks and
//! seeded state, while the real forward math runs on worker threads that
//! write id-indexed buffers nobody schedules against. The outcome is
//! therefore a pure function of `(load seed, fault seed, config)` at any
//! `ASGD_THREADS`. What's new:
//!
//! - **Many models.** Requests carry a tenant; tenants map to registry
//!   versions; each version has its own FIFO so a micro-batch is always
//!   single-model. Dispatch serves the version whose queue head has waited
//!   longest (ties to the lowest version index).
//! - **Prediction cache.** Admission looks `(model signature, pool row)`
//!   up; a hit completes at `arrival + cache_latency_s` without touching a
//!   device, and its predictions are replayed from the computed request
//!   that filled the entry (after the workers drain — reps are always
//!   computed requests, never other hits, so replay is one copy deep).
//! - **Hedged requests.** At dispatch, a request whose queueing delay
//!   crossed the [`HedgePolicy`] quantile is also charged as a singleton
//!   batch on the earliest-free *other* replica; the earlier completion
//!   (plus cross-server RTT) wins and the loser's device clock is rolled
//!   back from the moment the winner finished ([`Device::rollback_to`] —
//!   virtual-time cancellation). Predictions always come from the primary
//!   batch, so hedging changes timing, never math.
//! - **Elastic autoscaling.** Replica *slots* (one per device profile,
//!   placed round-robin across the cluster's servers so scale-out lands on
//!   different simulated machines) are commissioned and decommissioned by
//!   the [`AutoscaleController`] at window boundaries, reusing the chaos
//!   harness's add/remove mechanics: a booted slot joins dispatch after
//!   `boot_delay_s`, a drained slot stops being paid for. Device-seconds
//!   (the cost metric) integrate commissioned wall-time, not busy time —
//!   an idle static fleet pays for its idleness.

use crate::autoscale::{AutoscaleController, AutoscaleDecision, Provisioning};
use crate::cache::{CacheStats, PredictionCache};
use crate::engine::LatencyStats;
use crate::hedge::{HedgePolicy, HedgeStats};
use crate::loadgen::TenantRequest;
use crate::registry::{DedupStats, ModelRegistry, VersionId};
use crate::slo::SloController;
use asgd_core::ScalingParams;
use asgd_gpusim::{
    ClusterTopology, Device, DeviceId, DeviceProfile, FaultEvent, FaultKind, FaultPlan, SimTime,
};
use asgd_model::workload::inference_kernels;
use asgd_model::{Mlp, Workspace};
use asgd_sparse::CsrMatrix;
use asgd_stats::percentile;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Arc;

/// Histogram span of per-replica latency stats, in SLO multiples (matches
/// the single-model engine).
const HIST_SLO_SPAN: f64 = 8.0;

/// Fleet-run parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Top-k classes per request (capped at `num_classes`).
    pub k: usize,
    /// Per-request latency SLO, seconds.
    pub slo_s: f64,
    /// Micro-batch bounds of the per-replica SLO controller.
    pub scaling: ScalingParams,
    /// Adaptive micro-batching on/off (off = fixed `b_max`).
    pub adaptive: bool,
    /// Controller window length, in fleet-wide dispatches. Autoscale
    /// decisions fire at the same boundaries.
    pub window_dispatches: usize,
    /// Seed of the devices' jitter streams.
    pub device_seed: u64,
    /// Prediction-cache capacity in entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Completion latency of a cache hit, seconds.
    pub cache_latency_s: f64,
    /// Hedge above this quantile of observed queueing delays
    /// (`None` = hedging off).
    pub hedge_quantile: Option<f64>,
    /// Queueing-delay observations required before hedging arms.
    pub hedge_min_obs: u64,
    /// Minimum actual wait before a hedge fires, seconds (noise floor).
    pub hedge_min_wait_s: f64,
    /// Replica provisioning policy.
    pub provisioning: Provisioning,
    /// Elastic floor (initial commissioned count under
    /// [`Provisioning::Auto`]).
    pub r_min: usize,
    /// Autoscale controller gain (replicas per unit relative depth error).
    pub autoscale_beta: f64,
    /// Admission-queue depth the autoscaler targets.
    pub autoscale_target_depth: f64,
    /// Virtual boot time of a newly commissioned replica, seconds.
    pub boot_delay_s: f64,
}

impl FleetConfig {
    /// Paper-flavored defaults: adaptive micro-batching with `b_max`-derived
    /// bounds, cache and hedging off, static full provisioning. Turn the
    /// subsystems on with the builder methods.
    pub fn paper_defaults(b_max: usize, slo_s: f64) -> Self {
        Self {
            k: 5,
            slo_s,
            scaling: ScalingParams::paper_defaults(b_max),
            adaptive: true,
            window_dispatches: 16,
            device_seed: 0x5E12_F1EE,
            cache_capacity: 0,
            cache_latency_s: 50e-6,
            hedge_quantile: None,
            hedge_min_obs: 64,
            hedge_min_wait_s: 0.0,
            provisioning: Provisioning::Static(usize::MAX),
            r_min: 1,
            autoscale_beta: 1.0,
            autoscale_target_depth: 16.0,
            boot_delay_s: 0.0,
        }
    }

    /// Enables the prediction cache with `capacity` entries.
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Enables hedging above quantile `q` of observed queueing delays.
    pub fn hedged(mut self, q: f64) -> Self {
        self.hedge_quantile = Some(q);
        self
    }

    /// Elastic provisioning: start at `r_min` replicas, scale on queue depth.
    pub fn autoscaled(mut self, r_min: usize) -> Self {
        self.provisioning = Provisioning::Auto;
        self.r_min = r_min;
        self
    }

    /// Static provisioning at exactly `n` replicas (clamped to the slot
    /// count by the engine).
    pub fn static_replicas(mut self, n: usize) -> Self {
        self.provisioning = Provisioning::Static(n);
        self
    }
}

/// Timing record of one fleet request (simulated seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetRecord {
    /// Arrival at the admission frontend.
    pub arrival: f64,
    /// Dispatch to a replica (equals `arrival` for cache hits).
    pub dispatched: f64,
    /// Completion as seen by the frontend (cross-server RTT included).
    pub completed: f64,
    /// Winning replica slot; `None` for cache hits.
    pub replica: Option<usize>,
    /// Micro-batch size the request rode in (0 for cache hits).
    pub batch: usize,
    /// Owning tenant.
    pub tenant: u16,
    /// Served from the prediction cache.
    pub cache_hit: bool,
    /// A hedge was issued for this request.
    pub hedged: bool,
    /// The hedge beat the primary batch.
    pub hedge_won: bool,
}

impl FleetRecord {
    /// End-to-end latency (the SLO'd quantity).
    pub fn latency(&self) -> f64 {
        self.completed - self.arrival
    }

    /// Time spent waiting for dispatch.
    pub fn queueing(&self) -> f64 {
        self.dispatched - self.arrival
    }
}

/// Per-slot summary of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReplicaReport {
    /// Device name (from the profile).
    pub name: String,
    /// Simulated server the slot lives on.
    pub server: usize,
    /// Still alive at end of run.
    pub alive: bool,
    /// Commissioned at end of run.
    pub commissioned: bool,
    /// Requests whose winning completion this slot produced.
    pub served: usize,
    /// Primary micro-batches executed.
    pub batches: usize,
    /// Micro-batch size at end of run.
    pub final_b: usize,
    /// Commissioned wall-time paid for, device-seconds.
    pub device_seconds: f64,
    /// Latency statistics of the requests this slot completed.
    pub stats: LatencyStats,
}

/// Everything a fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Per-request timing, indexed by request id (`None` = never served;
    /// zero-loss degradation says there are none).
    pub records: Vec<Option<FleetRecord>>,
    /// Row-major `n × k_eff` predicted class ids, indexed by request id.
    pub predictions: Vec<u32>,
    /// Classes returned per request.
    pub k_eff: usize,
    /// Per-slot summaries, by slot index.
    pub replicas: Vec<FleetReplicaReport>,
    /// Human-readable fault log, in firing order.
    pub fault_log: Vec<String>,
    /// Autoscale decision per window (empty under static provisioning).
    pub trajectory: Vec<AutoscaleDecision>,
    /// Prediction-cache counters.
    pub cache: CacheStats,
    /// Hedging counters.
    pub hedge: HedgeStats,
    /// Registry dedup accounting at serve time.
    pub dedup: DedupStats,
    /// Completion time of the last request.
    pub makespan_s: f64,
    /// Requests served.
    pub served: usize,
    /// Requests never served (zero by construction).
    pub lost: usize,
}

impl FleetOutcome {
    /// Exact latency percentile over every served request (id order —
    /// deterministic, unlike completion-order streaming merges). `None` on
    /// an empty run.
    pub fn latency_percentile(&self, q: f64) -> Option<f64> {
        let lats: Vec<f64> = self.records.iter().flatten().map(|r| r.latency()).collect();
        percentile(&lats, q)
    }

    /// Total commissioned device-seconds — the provisioning cost.
    pub fn device_seconds(&self) -> f64 {
        self.replicas.iter().map(|r| r.device_seconds).sum()
    }

    /// Served requests per simulated second (0 on an empty run).
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.served as f64 / self.makespan_s
        } else {
            0.0
        }
    }

    /// The predictions of one request (`k_eff` class ids), or `None` for an
    /// id the run never saw.
    pub fn prediction(&self, id: u32) -> Option<&[u32]> {
        let lo = (id as usize).checked_mul(self.k_eff)?;
        self.predictions.get(lo..lo + self.k_eff)
    }
}

/// One replica slot's scheduler-side state.
struct Slot {
    device: Device,
    server: usize,
    controller: SloController,
    alive: bool,
    commissioned: bool,
    served: usize,
    batches: usize,
    window_lat: Vec<f64>,
    stats: LatencyStats,
    /// Commissioned `(start, end)` intervals; `None` end = still open.
    intervals: Vec<(f64, Option<f64>)>,
    tx: Option<mpsc::Sender<WorkItem>>,
}

impl Slot {
    fn dispatchable(&self) -> bool {
        self.alive && self.commissioned
    }

    fn commission(&mut self, at: f64) {
        self.commissioned = true;
        self.intervals.push((at, None));
    }

    fn decommission(&mut self, at: f64) {
        self.commissioned = false;
        if let Some(open) = self.intervals.last_mut().filter(|i| i.1.is_none()) {
            open.1 = Some(at.max(open.0));
        }
    }
}

/// A micro-batch shipped to a slot worker (the model rides along — slots
/// serve whichever version the scheduler picked).
struct WorkItem {
    model: Arc<Mlp>,
    x: CsrMatrix,
    ids: Vec<u32>,
}

/// The dispatchable slot whose clock frees first (ties to the lowest slot
/// index).
fn pick_slot(slots: &[Slot]) -> usize {
    let mut best = usize::MAX;
    let mut best_t = f64::INFINITY;
    for (i, s) in slots.iter().enumerate() {
        if s.dispatchable() && s.device.now().secs() < best_t {
            best_t = s.device.now().secs();
            best = i;
        }
    }
    assert!(best != usize::MAX, "no dispatchable replica");
    best
}

/// Applies one due fault event to the fleet. Device indices address slots;
/// `ServerLoss`/`InterNodeStall` address servers of the cluster topology.
fn apply_fault(
    slots: &mut [Slot],
    e: FaultEvent,
    anchor: f64,
    queued: usize,
    log: &mut Vec<String>,
) {
    let at = format!("w{}+{}", e.at_mega, e.after_batches);
    let kill = |slots: &mut [Slot], i: usize, at: &str, anchor: f64, log: &mut Vec<String>| {
        slots[i].alive = false;
        if slots[i].commissioned {
            slots[i].decommission(anchor);
        }
        slots[i].tx = None;
        log.push(format!("{at}: slot{i} lost"));
    };
    match e.kind {
        FaultKind::SpeedChange { factor } => {
            if let Some(s) = slots.get_mut(e.gpu).filter(|s| s.alive) {
                s.device.schedule_speed_factor(SimTime(anchor), factor);
                log.push(format!("{at}: slot{} speed -> {factor:.2}", e.gpu));
            }
        }
        FaultKind::Stall { seconds } => {
            if let Some(s) = slots.get_mut(e.gpu).filter(|s| s.alive) {
                let now = s.device.now();
                s.device.advance_to(now + seconds);
                log.push(format!("{at}: slot{} stalled {seconds:.3}s", e.gpu));
            }
        }
        FaultKind::DeviceLoss => {
            let Some(s) = slots.get(e.gpu) else { return };
            if !s.alive {
                return;
            }
            let survivors = slots.iter().filter(|s| s.dispatchable()).count();
            if s.commissioned && survivors <= 1 {
                log.push(format!("{at}: slot{} loss REFUSED (last survivor)", e.gpu));
            } else {
                kill(slots, e.gpu, &at, anchor, log);
                log.push(format!("{at}: {queued} queued drain through survivors"));
            }
        }
        FaultKind::ServerLoss => {
            let victims: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.server == e.gpu && s.alive)
                .map(|(i, _)| i)
                .collect();
            let outside = slots
                .iter()
                .filter(|s| s.dispatchable() && s.server != e.gpu)
                .count();
            if victims.is_empty() {
                // Nothing alive there — nothing to do.
            } else if outside == 0 {
                log.push(format!(
                    "{at}: server{} loss REFUSED (no survivor outside)",
                    e.gpu
                ));
            } else {
                for i in victims {
                    kill(slots, i, &at, anchor, log);
                }
                log.push(format!("{at}: server{} lost", e.gpu));
            }
        }
        FaultKind::InterNodeStall { seconds } => {
            // The stalled link makes every replica on that server
            // unreachable for `seconds` — model it as a fleet-visible stall
            // of those devices.
            for s in slots.iter_mut().filter(|s| s.server == e.gpu && s.alive) {
                let now = s.device.now();
                s.device.advance_to(now + seconds);
            }
            log.push(format!("{at}: server{} unreachable {seconds:.3}s", e.gpu));
        }
        // Training-merge fault; serving has no merge phase.
        FaultKind::MergeOom => {}
    }
}

/// Runs a multi-tenant fleet session.
///
/// `tenant_versions[t]` is the registry version tenant `t` serves;
/// `profiles[i]` is replica slot `i`'s device, placed on server
/// `i % topo.servers()` (round-robin, so elastic scale-out lands on a
/// different simulated server). Requests (rows of `pool`) drain through
/// per-version FIFOs under `plan`'s faults, with the cache, hedging, and
/// provisioning behavior of `config`.
///
/// The returned outcome — every latency, decision, and prediction — is a
/// pure function of the inputs, bit-identical at any `ASGD_THREADS`.
///
/// # Panics
/// Panics on an empty fleet, more slots than cluster devices, an unknown
/// tenant or version, an architecture/pool mismatch, or a request
/// referencing a row outside the pool.
#[allow(clippy::too_many_arguments)] // the session's full input tuple, each independently owned
pub fn serve_fleet(
    registry: &ModelRegistry,
    tenant_versions: &[VersionId],
    profiles: &[DeviceProfile],
    topo: &ClusterTopology,
    pool: &CsrMatrix,
    requests: &[TenantRequest],
    plan: &FaultPlan,
    config: &FleetConfig,
) -> FleetOutcome {
    assert!(!profiles.is_empty(), "need at least one replica slot");
    assert!(
        profiles.len() <= topo.n_devices(),
        "more replica slots than cluster devices"
    );
    assert!(config.k >= 1, "k must be at least 1");
    assert!(config.window_dispatches >= 1, "window must be non-empty");
    assert!(!tenant_versions.is_empty(), "need at least one tenant");
    assert!(
        tenant_versions.iter().all(|v| v.0 < registry.len()),
        "tenant mapped to unknown version"
    );
    assert_eq!(
        pool.cols(),
        registry.config().num_features,
        "pool/registry architecture mismatch"
    );
    assert!(
        requests
            .iter()
            .all(|r| r.pool_row < pool.rows() && (r.tenant as usize) < tenant_versions.len()),
        "request outside the pool or tenant map"
    );

    let n = requests.len();
    let k_eff = config.k.min(registry.config().num_classes);
    let hist_hi = config.slo_s * HIST_SLO_SPAN;
    let n_versions = registry.len();
    // Per-tenant shortcuts: the served model and its content signature
    // (shared across deduped versions — the cache key prefix).
    let tenant_model: Vec<Arc<Mlp>> = tenant_versions
        .iter()
        .map(|&v| registry.model(v).clone())
        .collect();
    let tenant_sig: Vec<u64> = tenant_versions
        .iter()
        .map(|&v| registry.version(v).sig)
        .collect();
    let tenant_queue: Vec<usize> = tenant_versions.iter().map(|&v| v.0).collect();

    // Cross-server RTT charged on completions a non-frontend server
    // produces (the frontend lives on server 0): one result payload each
    // way over the inter-node link.
    let rtt_s = 2.0 * topo.inter_time(k_eff * 4);
    let rtt = |server: usize| if server == 0 { 0.0 } else { rtt_s };

    let mut records: Vec<Option<FleetRecord>> = vec![None; n];
    let mut predictions = vec![0u32; n * k_eff];
    let mut fault_log: Vec<String> = Vec::new();
    let mut trajectory: Vec<AutoscaleDecision> = Vec::new();
    let mut cache = PredictionCache::new(config.cache_capacity);
    // id of a cache hit → id of the computed request whose predictions it
    // replays (resolved after the workers drain).
    let mut replays: Vec<(u32, u32)> = Vec::new();
    let mut hedge_policy = match config.hedge_quantile {
        Some(q) => HedgePolicy::new(q, config.hedge_min_obs, config.hedge_min_wait_s),
        None => HedgePolicy::disabled(),
    };
    let mut hedge_stats = HedgeStats::default();

    let mut autoscaler = match config.provisioning {
        Provisioning::Auto => Some(AutoscaleController::new(
            config.r_min.min(profiles.len()).max(1),
            profiles.len(),
            config.autoscale_beta,
            config.autoscale_target_depth,
        )),
        Provisioning::Static(_) => None,
    };
    let initial = match config.provisioning {
        Provisioning::Auto => config.r_min.min(profiles.len()).max(1),
        Provisioning::Static(s) => s.clamp(1, profiles.len()),
    };

    let mut slots: Vec<Slot> = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| Slot {
            device: Device::new(DeviceId(i), p.clone(), config.device_seed ^ i as u64),
            server: i % topo.servers(),
            controller: SloController::new(config.scaling, config.slo_s),
            alive: true,
            commissioned: false,
            served: 0,
            batches: 0,
            window_lat: Vec::new(),
            stats: LatencyStats::new(hist_hi),
            intervals: Vec::new(),
            tx: None,
        })
        .collect();
    for s in slots.iter_mut().take(initial) {
        s.commission(0.0);
    }

    std::thread::scope(|scope| {
        // One inference worker per slot, spawned up front — spare slots just
        // idle on an empty channel until commissioned. Workers own reused
        // workspaces and write nothing the scheduler reads.
        let (res_tx, res_rx) = mpsc::channel::<(Vec<u32>, Vec<u32>)>();
        let ws_config = *registry.config();
        for slot in slots.iter_mut() {
            let (tx, rx) = mpsc::channel::<WorkItem>();
            slot.tx = Some(tx);
            let res = res_tx.clone();
            scope.spawn(move || {
                let mut ws = Workspace::new(&ws_config);
                let mut out: Vec<u32> = Vec::new();
                for item in rx {
                    let got = item
                        .model
                        .predict_topk_ws(&item.x, k_eff, &mut ws, &mut out);
                    debug_assert_eq!(got, k_eff);
                    let _ = res.send((item.ids, out.clone()));
                }
            });
        }
        drop(res_tx);

        // The scheduler loop: single-threaded, virtual-time only.
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); n_versions];
        let mut queued = 0usize;
        let mut next_arr = 0usize;
        let mut window = 0u64;
        let mut in_window = 0usize;
        let mut batch: Vec<usize> = Vec::new();
        let mut pool_rows: Vec<usize> = Vec::new();

        loop {
            if queued == 0 && next_arr >= n {
                break;
            }
            // Fault events due before this dispatch.
            let anchor = slots[pick_slot(&slots)].device.now().secs();
            for e in plan.due(window as usize, in_window, false) {
                apply_fault(&mut slots, e, anchor, queued, &mut fault_log);
            }

            // Dispatch to whichever commissioned replica frees first, no
            // earlier than the oldest pending request.
            let r = pick_slot(&slots);
            let free = slots[r].device.now().secs();
            let first_pending = queues
                .iter()
                .filter_map(|q| q.front())
                .map(|&q| requests[q].arrival)
                .fold(f64::INFINITY, f64::min)
                .min(if next_arr < n {
                    requests[next_arr].arrival
                } else {
                    f64::INFINITY
                });
            let t = free.max(first_pending);
            slots[r].device.advance_to(SimTime(t));

            // Admit arrivals up to `t`. Admission is where the cache acts:
            // a ready hit completes immediately at the frontend and never
            // queues.
            while next_arr < n && requests[next_arr].arrival <= t {
                let req = &requests[next_arr];
                let key = (tenant_sig[req.tenant as usize], req.pool_row as u32);
                if let Some(rep) = cache.lookup(key, req.arrival) {
                    records[next_arr] = Some(FleetRecord {
                        arrival: req.arrival,
                        dispatched: req.arrival,
                        completed: req.arrival + config.cache_latency_s,
                        replica: None,
                        batch: 0,
                        tenant: req.tenant,
                        cache_hit: true,
                        hedged: false,
                        hedge_won: false,
                    });
                    replays.push((req.id, rep));
                } else {
                    queues[tenant_queue[req.tenant as usize]].push_back(next_arr);
                    queued += 1;
                }
                next_arr += 1;
            }
            if queued == 0 {
                // Everything admitted this round hit the cache; nothing to
                // dispatch yet.
                continue;
            }

            // Serve the version whose head has waited longest (ties to the
            // lowest version index), cutting up to the replica's adaptive
            // micro-batch of already-arrived requests.
            let v = queues
                .iter()
                .enumerate()
                .filter_map(|(i, q)| q.front().map(|&h| (i, requests[h].arrival)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
                .map(|(i, _)| i)
                .expect("queued > 0");
            let b = slots[r].controller.micro_batch();
            batch.clear();
            while batch.len() < b {
                match queues[v].front() {
                    Some(&q) if requests[q].arrival <= t => {
                        batch.push(q);
                        queues[v].pop_front();
                        queued -= 1;
                    }
                    _ => break,
                }
            }
            debug_assert!(!batch.is_empty(), "dispatch with nothing arrived");

            // Charge the primary device the batch's forward kernels.
            pool_rows.clear();
            pool_rows.extend(batch.iter().map(|&q| requests[q].pool_row));
            let x = pool.select_rows(&pool_rows);
            let model = &tenant_model[requests[batch[0]].tenant as usize];
            let kernels = inference_kernels(model.config(), x.rows(), x.nnz(), k_eff);
            slots[r].device.execute_all(&kernels);
            let done = slots[r].device.now().secs();

            // Hedge the stragglers: requests whose wait crossed the policy
            // threshold race a singleton batch on the earliest-free other
            // replica; the loser's clock is rolled back from the moment the
            // winner finished.
            for &q in &batch {
                let wait = t - requests[q].arrival;
                let mut completed = done + rtt(slots[r].server);
                let mut winner = r;
                let mut hedged = false;
                let mut hedge_won = false;
                if hedge_policy.should_hedge(wait) {
                    let mut best = usize::MAX;
                    let mut best_t = f64::INFINITY;
                    for (i, s) in slots.iter().enumerate() {
                        if i != r && s.dispatchable() && s.device.now().secs() < best_t {
                            best_t = s.device.now().secs();
                            best = i;
                        }
                    }
                    if best != usize::MAX {
                        hedged = true;
                        hedge_stats.issued += 1;
                        let h = best;
                        let t2 = slots[h].device.now().secs().max(t);
                        slots[h].device.advance_to(SimTime(t2));
                        let x1 = pool.select_rows(&[requests[q].pool_row]);
                        let k1 = inference_kernels(model.config(), 1, x1.nnz(), k_eff);
                        slots[h].device.execute_all(&k1);
                        let h_done = slots[h].device.now().secs();
                        let h_completed = h_done + rtt(slots[h].server);
                        if h_completed < completed {
                            hedge_won = true;
                            hedge_stats.wins += 1;
                            completed = h_completed;
                            winner = h;
                        } else {
                            // Cancelled when the primary's completion
                            // reaches the frontend; work past that point is
                            // reclaimed in virtual time.
                            hedge_stats.losses += 1;
                            let cancel = completed.max(t2);
                            hedge_stats.cancelled_s += slots[h].device.rollback_to(SimTime(cancel));
                        }
                    }
                }
                let rec = FleetRecord {
                    arrival: requests[q].arrival,
                    dispatched: t,
                    completed,
                    replica: Some(winner),
                    batch: batch.len(),
                    tenant: requests[q].tenant,
                    cache_hit: false,
                    hedged,
                    hedge_won,
                };
                records[q] = Some(rec);
                slots[winner].window_lat.push(rec.latency());
                slots[winner].stats.record(rec.latency());
                slots[winner].served += 1;
                hedge_policy.observe(wait);
                // Fill the cache at the frontend-visible completion; the
                // first computation of a key wins, so replays never alias
                // through another hit.
                let key = (
                    tenant_sig[requests[q].tenant as usize],
                    requests[q].pool_row as u32,
                );
                cache.insert(key, requests[q].id, rec.completed);
            }
            slots[r].batches += 1;

            // Ship the real math to the primary's worker (hedges re-time a
            // request, they never recompute it).
            let ids: Vec<u32> = batch.iter().map(|&q| requests[q].id).collect();
            if let Some(tx) = &slots[r].tx {
                let _ = tx.send(WorkItem {
                    model: model.clone(),
                    x,
                    ids,
                });
            }

            in_window += 1;
            if in_window == config.window_dispatches {
                // Boundary sweep: never-reached fault ordinals fire here.
                let anchor = slots[pick_slot(&slots)].device.now().secs();
                for e in plan.due(window as usize, in_window, true) {
                    apply_fault(&mut slots, e, anchor, queued, &mut fault_log);
                }
                for s in slots.iter_mut().filter(|s| s.dispatchable()) {
                    if config.adaptive && !s.window_lat.is_empty() {
                        let p99 = percentile(&s.window_lat, 0.99).expect("non-empty window");
                        s.controller.observe_window(p99);
                    }
                    s.window_lat.clear();
                }
                if let Some(ctl) = autoscaler.as_mut() {
                    let decision = ctl.observe_depth(window, queued);
                    trajectory.push(decision);
                    let anchor = slots[pick_slot(&slots)].device.now().secs();
                    let mut up = slots.iter().filter(|s| s.dispatchable()).count();
                    // Scale out: commission spare alive slots ascending —
                    // round-robin placement sends them to other servers.
                    while up < decision.replicas {
                        let Some(i) = slots.iter().position(|s| s.alive && !s.commissioned) else {
                            break;
                        };
                        slots[i].commission(anchor);
                        let boot = anchor + config.boot_delay_s;
                        let now = slots[i].device.now().secs();
                        slots[i].device.advance_to(SimTime(now.max(boot)));
                        up += 1;
                    }
                    // Scale in: decommission LIFO, never below one replica.
                    while up > decision.replicas && up > 1 {
                        let i = slots
                            .iter()
                            .rposition(|s| s.dispatchable())
                            .expect("up > 0");
                        let end = anchor.max(slots[i].device.now().secs());
                        slots[i].decommission(end);
                        up -= 1;
                    }
                }
                window += 1;
                in_window = 0;
            }
        }

        // Close every worker channel, then drain all results into the
        // id-indexed prediction buffer (order-independent by construction).
        for s in slots.iter_mut() {
            s.tx = None;
        }
        for (ids, out) in res_rx {
            for (j, &id) in ids.iter().enumerate() {
                predictions[id as usize * k_eff..(id as usize + 1) * k_eff]
                    .copy_from_slice(&out[j * k_eff..(j + 1) * k_eff]);
            }
        }
    });

    // Replay cached predictions from their computed representatives (one
    // copy deep — reps are never hits themselves).
    for &(id, rep) in &replays {
        let (dst, src) = (id as usize * k_eff, rep as usize * k_eff);
        let row: Vec<u32> = predictions[src..src + k_eff].to_vec();
        predictions[dst..dst + k_eff].copy_from_slice(&row);
    }

    let served = records.iter().filter(|r| r.is_some()).count();
    let makespan_s = records
        .iter()
        .flatten()
        .map(|r| r.completed)
        .fold(0.0f64, f64::max);
    let replicas = slots
        .into_iter()
        .map(|s| {
            let device_seconds: f64 = s
                .intervals
                .iter()
                .map(|&(start, end)| end.unwrap_or(makespan_s).max(start) - start)
                .sum();
            FleetReplicaReport {
                name: s.device.profile().name.clone(),
                server: s.server,
                alive: s.alive,
                commissioned: s.commissioned,
                served: s.served,
                batches: s.batches,
                final_b: s.controller.micro_batch(),
                device_seconds,
                stats: s.stats,
            }
        })
        .collect();
    FleetOutcome {
        records,
        predictions,
        k_eff,
        replicas,
        fault_log,
        trajectory,
        cache: cache.stats(),
        hedge: hedge_stats,
        dedup: registry.dedup_stats(),
        makespan_s,
        served,
        lost: n - served,
    }
}
