//! Prediction cache: capacity-bounded, deterministically evicted.
//!
//! The Zipf head of a multi-tenant load repeats the same `(model, request)`
//! pairs over and over; serving each repeat through a GPU batch wastes
//! device-seconds that a small cache recovers. The cache here is a plain
//! LRU, but with two twists that keep the whole fleet simulation a pure
//! function of its seeds:
//!
//! - **Keys are content-addressed.** A key is `(model content signature,
//!   pool row)`, not `(version id, pool row)` — two registry versions that
//!   dedup to the same weights share cache entries, exactly like they share
//!   layer allocations.
//! - **Recency is virtual, not wall-clock.** Every lookup/insert carries a
//!   monotone access sequence number assigned by the single-threaded
//!   scheduler loop, so eviction order is identical at any `ASGD_THREADS`.
//!   Ties cannot happen (sequence numbers are unique), making eviction
//!   fully deterministic.
//!
//! An entry only *hits* once its `ready_at` virtual time has passed: a
//! request that arrives while the batch computing its key is still in
//! flight misses and is served by the fleet like any cold request. This
//! models a cache that is filled by completion callbacks, not by intent.

use std::collections::{BTreeMap, HashMap};

/// Cache key: the model's content signature (shared across deduped
/// versions) and the request-pool row.
pub type CacheKey = (u64, u32);

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Id of the computed request whose predictions this entry replays.
    rep_id: u32,
    /// Virtual time at which the entry becomes visible (the completion of
    /// the batch that computed it).
    ready_at: f64,
    /// Last-access sequence number (monotone, scheduler-assigned).
    seq: u64,
}

/// Running cache counters, reported in [`crate::FleetOutcome`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the fleet.
    pub misses: u64,
    /// Entries written (first completion per key version).
    pub insertions: u64,
    /// Entries evicted at capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Deterministic LRU over `(model signature, pool row)` keys.
#[derive(Debug)]
pub struct PredictionCache {
    capacity: usize,
    entries: HashMap<CacheKey, Entry>,
    // Access order: seq → key. BTreeMap gives O(log n) oldest-first
    // eviction with a deterministic iteration order.
    by_seq: BTreeMap<u64, CacheKey>,
    next_seq: u64,
    stats: CacheStats,
}

impl PredictionCache {
    /// A cache holding at most `capacity` entries. Capacity 0 disables the
    /// cache (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: HashMap::new(),
            by_seq: BTreeMap::new(),
            next_seq: 0,
            stats: CacheStats::default(),
        }
    }

    /// Looks `key` up at virtual time `now`. A hit returns the computed
    /// request id whose predictions the caller should replay, and bumps the
    /// entry's recency. An entry that exists but is not yet `ready_at <=
    /// now` misses *without* losing its place (its batch is still in
    /// flight).
    pub fn lookup(&mut self, key: CacheKey, now: f64) -> Option<u32> {
        match self.entries.get_mut(&key) {
            Some(e) if e.ready_at <= now => {
                self.by_seq.remove(&e.seq);
                e.seq = self.next_seq;
                self.by_seq.insert(e.seq, key);
                self.next_seq += 1;
                self.stats.hits += 1;
                Some(e.rep_id)
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records that request `rep_id` computes `key`'s predictions, visible
    /// from virtual time `ready_at`. Re-inserting an existing key only
    /// refreshes its recency (the earliest computation's id is kept, so
    /// prediction replay never aliases through another cached request).
    /// Evicts the least-recently-used entry beyond capacity.
    pub fn insert(&mut self, key: CacheKey, rep_id: u32, ready_at: f64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(e) = self.entries.get_mut(&key) {
            self.by_seq.remove(&e.seq);
            e.seq = self.next_seq;
            self.by_seq.insert(e.seq, key);
            self.next_seq += 1;
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(
            key,
            Entry {
                rep_id,
                ready_at,
                seq,
            },
        );
        self.by_seq.insert(seq, key);
        self.stats.insertions += 1;
        while self.entries.len() > self.capacity {
            let (&oldest, &victim) = self
                .by_seq
                .iter()
                .next()
                .expect("non-empty beyond capacity");
            self.by_seq.remove(&oldest);
            self.entries.remove(&victim);
            self.stats.evictions += 1;
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_requires_readiness() {
        let mut c = PredictionCache::new(4);
        c.insert((1, 0), 10, 5.0);
        // Before the batch completes: miss, entry survives.
        assert_eq!(c.lookup((1, 0), 4.9), None);
        assert_eq!(c.lookup((1, 0), 5.0), Some(10));
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                insertions: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn eviction_is_lru_by_access_sequence() {
        let mut c = PredictionCache::new(2);
        c.insert((1, 0), 0, 0.0);
        c.insert((1, 1), 1, 0.0);
        // Touch key 0 so key 1 becomes the LRU victim.
        assert_eq!(c.lookup((1, 0), 1.0), Some(0));
        c.insert((1, 2), 2, 0.0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup((1, 1), 1.0), None, "LRU entry must be evicted");
        assert_eq!(c.lookup((1, 0), 1.0), Some(0));
        assert_eq!(c.lookup((1, 2), 1.0), Some(2));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_keeps_first_computation() {
        let mut c = PredictionCache::new(2);
        c.insert((7, 3), 5, 1.0);
        c.insert((7, 3), 9, 2.0);
        // The original id and readiness stick; only recency moved.
        assert_eq!(c.lookup((7, 3), 1.5), Some(5));
        assert_eq!(c.stats().insertions, 1);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut c = PredictionCache::new(0);
        c.insert((1, 0), 0, 0.0);
        assert!(c.is_empty());
        assert_eq!(c.lookup((1, 0), 10.0), None);
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn distinct_signatures_do_not_collide() {
        let mut c = PredictionCache::new(4);
        c.insert((1, 0), 0, 0.0);
        c.insert((2, 0), 1, 0.0);
        assert_eq!(c.lookup((1, 0), 1.0), Some(0));
        assert_eq!(c.lookup((2, 0), 1.0), Some(1));
    }
}
