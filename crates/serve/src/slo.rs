//! The per-replica SLO controller: Algorithm 1's linear rule, re-targeted
//! from update-count balance to tail latency.
//!
//! Training's Algorithm 1 moves each GPU's batch size toward the point where
//! every replica performs the same number of updates per mega-batch. Serving
//! replaces the balance target with a latency target: at each window
//! boundary the replica's observed p99 is compared to the SLO and the
//! micro-batch size moves by `β` scaled by the *normalized* error,
//!
//! ```text
//! b ← clamp(b − β·(p99 − target)/target, b_min, b_max)
//! ```
//!
//! Over the SLO the batch shrinks — each request waits for fewer peers and
//! the dynamic dispatcher routes the overflow to faster replicas; under the
//! SLO it grows back, re-amortizing launch overhead. Normalizing by the
//! target makes `β` unit-free (requests per "100% over SLO"), so the paper's
//! `β = b_min/2` default carries over unchanged.
//!
//! One deliberate deviation from the training rule: training *skips* an
//! update that would leave `[b_min, b_max]` (utilization reasoning, §IV),
//! while the controller *truncates* to the bound. A skip rule pinned at
//! `b_max` would never react to a large SLO violation — exactly the straggler
//! case serving must handle.

use asgd_core::ScalingParams;

/// Adaptive micro-batch controller for one serving replica.
#[derive(Debug, Clone)]
pub struct SloController {
    params: ScalingParams,
    target_s: f64,
    b: f64,
}

impl SloController {
    /// A controller starting at `b_max` (maximum utilization, as in
    /// training) aiming at a per-request latency SLO of `target_s` seconds.
    ///
    /// # Panics
    /// Panics when the target or the scaling bounds are not positive.
    pub fn new(params: ScalingParams, target_s: f64) -> Self {
        assert!(target_s > 0.0, "SLO target must be positive");
        assert!(
            params.b_min >= 1.0 && params.b_max >= params.b_min && params.beta >= 0.0,
            "bad scaling parameters"
        );
        Self {
            params,
            target_s,
            b: params.b_max,
        }
    }

    /// The micro-batch size to cut next (rounded, never below 1).
    pub fn micro_batch(&self) -> usize {
        self.b.round().max(1.0) as usize
    }

    /// The latency target, seconds.
    pub fn target_s(&self) -> f64 {
        self.target_s
    }

    /// Applies one window observation (`p99_s` = the replica's p99 request
    /// latency over the window, in seconds) and returns the new fractional
    /// batch size. Windows with no observations should simply not call this.
    pub fn observe_window(&mut self, p99_s: f64) -> f64 {
        let err = (p99_s - self.target_s) / self.target_s;
        self.b = (self.b - self.params.beta * err).clamp(self.params.b_min, self.params.b_max);
        self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(b_max: usize, slo: f64) -> SloController {
        SloController::new(ScalingParams::paper_defaults(b_max), slo)
    }

    #[test]
    fn starts_at_b_max() {
        let c = controller(64, 0.010);
        assert_eq!(c.micro_batch(), 64);
        assert_eq!(c.target_s(), 0.010);
    }

    #[test]
    fn over_slo_shrinks_and_under_slo_grows() {
        let mut c = controller(64, 0.010);
        let after_violation = c.observe_window(0.020); // 100% over
        assert!(after_violation < 64.0, "should shrink: {after_violation}");
        let shrunk = after_violation;
        // Well under the SLO: grow back (but the error is now negative and
        // smaller in magnitude, so growth is slower than the shrink was).
        let after_slack = c.observe_window(0.005);
        assert!(after_slack > shrunk, "should regrow: {after_slack}");
    }

    #[test]
    fn truncates_at_bounds_instead_of_skipping() {
        let mut c = controller(64, 0.010);
        // A massive violation repeatedly applied pins at b_min — the skip
        // rule of training's Algorithm 1 would stay frozen at b_max here.
        for _ in 0..200 {
            c.observe_window(1.0);
        }
        assert_eq!(
            c.micro_batch() as f64,
            ScalingParams::paper_defaults(64).b_min
        );
        // And sustained slack saturates back at b_max.
        for _ in 0..2_000 {
            c.observe_window(0.0001);
        }
        assert_eq!(
            c.micro_batch() as f64,
            ScalingParams::paper_defaults(64).b_max
        );
    }

    #[test]
    fn exactly_on_target_is_a_fixed_point() {
        let mut c = controller(64, 0.010);
        c.observe_window(0.020);
        let b = c.micro_batch();
        for _ in 0..5 {
            c.observe_window(0.010);
        }
        assert_eq!(c.micro_batch(), b);
    }

    #[test]
    fn update_is_deterministic() {
        let run = || {
            let mut c = controller(32, 0.008);
            for p99 in [0.02, 0.011, 0.006, 0.009] {
                c.observe_window(p99);
            }
            c.observe_window(0.012).to_bits()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "SLO target must be positive")]
    fn zero_target_panics() {
        let _ = controller(64, 0.0);
    }

    #[test]
    fn one_step_overshoot_truncates_exactly_at_b_min() {
        let params = ScalingParams::paper_defaults(64); // b_min=8, β=4
        let mut c = SloController::new(params, 0.010);
        // p99 = 1.01 s against a 10 ms target → relative error 100 → raw
        // step β·100 = 400, far past b_min from 64: the update must land
        // exactly AT b_min, never below.
        let b = c.observe_window(1.0 + 0.010);
        assert_eq!(b, params.b_min);
        assert_eq!(c.micro_batch() as f64, params.b_min);
    }

    #[test]
    fn negative_error_overshoot_truncates_exactly_at_b_max() {
        let params = ScalingParams::paper_defaults(64);
        let mut c = SloController::new(params, 0.010);
        c.observe_window(0.020); // step off b_max first
        assert!(c.micro_batch() < 64);
        // p99 ≈ 0 → error ≈ −1 → raw growth β per window; a huge synthetic
        // slack (negative error far beyond −1 cannot happen with real
        // latencies, but the clamp must hold for any input).
        let b = c.observe_window(-10.0 * 0.010);
        assert_eq!(b, params.b_max, "growth overshoot pins at b_max");
    }

    #[test]
    fn pinned_state_does_not_wind_up() {
        // Truncation (not skipping) also means no integral windup: after any
        // amount of time pinned at b_min, a single under-SLO window starts
        // regrowth immediately from b_min — the clamp forgot the overshoot.
        let params = ScalingParams::paper_defaults(64);
        let mut c = SloController::new(params, 0.010);
        for _ in 0..1_000 {
            c.observe_window(10.0);
        }
        assert_eq!(c.micro_batch() as f64, params.b_min);
        let b = c.observe_window(0.005);
        assert_eq!(b, params.b_min + params.beta * 0.5);
        assert!(c.micro_batch() as f64 > params.b_min);
    }

    #[test]
    fn fractional_state_survives_rounding() {
        // micro_batch() rounds for dispatch but the controller's state stays
        // fractional: two half-β steps move one full β, not zero.
        let params = ScalingParams {
            b_min: 1.0,
            b_max: 64.0,
            beta: 1.0,
        };
        let mut c = SloController::new(params, 0.010);
        let b1 = c.observe_window(0.015); // error 0.5 → −0.5
        let b2 = c.observe_window(0.015);
        assert_eq!(b1, 63.5);
        assert_eq!(b2, 63.0);
    }
}
