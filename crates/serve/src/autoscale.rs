//! Elastic replica autoscaling: Algorithm 1 pointed at the admission queue.
//!
//! The paper's controller is a one-line linear feedback rule — move a knob
//! proportionally to the relative error of an observed signal, clamp to
//! bounds. Training uses it twice (batch size against step time, via
//! `asgd-core`; micro-batch against p99, via [`crate::SloController`]).
//! Here the knob is the **number of commissioned replicas** and the signal
//! is the **admission-queue depth** at a decision boundary:
//!
//! ```text
//! r ← clamp(r + β · (depth − target) / target, r_min, r_max)
//! ```
//!
//! Like the training-side controllers the internal state is continuous —
//! fractional progress accumulates across windows so a persistent small
//! error eventually moves the integer replica count — and the commissioned
//! count is its truncation. Scaling *mechanics* (which device slot boots or
//! drains, boot delay, placement across servers) belong to the fleet
//! engine; this type only decides "how many".

/// Provisioning policy for a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provisioning {
    /// Elastic: start at `r_min`, let the controller move the count.
    Auto,
    /// Fixed replica count for the whole run (controller off). Clamped to
    /// the fleet's `[1, r_max]` by the engine.
    Static(usize),
}

/// One controller decision, logged per window for the probe trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleDecision {
    /// Window index the decision closed.
    pub window: u64,
    /// Queue depth observed at the boundary.
    pub depth: usize,
    /// Commissioned replica target after the decision.
    pub replicas: usize,
}

/// The replica-count controller.
#[derive(Debug, Clone)]
pub struct AutoscaleController {
    r: f64,
    r_min: usize,
    r_max: usize,
    beta: f64,
    target_depth: f64,
    decisions: u64,
}

impl AutoscaleController {
    /// A controller bounded to `[r_min, r_max]` replicas, reacting with
    /// gain `beta` (replicas per unit of relative depth error) to a queue
    /// depth target of `target_depth` waiting requests. Starts at `r_min`
    /// — scale-out is earned by observed backlog, matching the elastic-
    /// training rule of growing resources only under demonstrated demand.
    ///
    /// # Panics
    /// Panics when the bounds are empty or the target/gain non-positive.
    pub fn new(r_min: usize, r_max: usize, beta: f64, target_depth: f64) -> Self {
        assert!(r_min >= 1, "need at least one replica");
        assert!(r_max >= r_min, "empty replica range");
        assert!(beta > 0.0, "controller gain must be positive");
        assert!(target_depth > 0.0, "depth target must be positive");
        Self {
            r: r_min as f64,
            r_min,
            r_max,
            beta,
            target_depth,
            decisions: 0,
        }
    }

    /// Current commissioned-replica target (truncation of the continuous
    /// state, like the micro-batch controller).
    pub fn replicas(&self) -> usize {
        (self.r as usize).clamp(self.r_min, self.r_max)
    }

    /// Applies one observation of the admission-queue depth and returns the
    /// new target. `depth` is the number of admitted-but-undispatched
    /// requests at the window boundary.
    pub fn observe_depth(&mut self, window: u64, depth: usize) -> AutoscaleDecision {
        let err = (depth as f64 - self.target_depth) / self.target_depth;
        self.r = (self.r + self.beta * err).clamp(self.r_min as f64, self.r_max as f64);
        self.decisions += 1;
        AutoscaleDecision {
            window,
            depth,
            replicas: self.replicas(),
        }
    }

    /// Decisions taken so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// The inclusive replica bounds.
    pub fn bounds(&self) -> (usize, usize) {
        (self.r_min, self.r_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_r_min_and_grows_under_backlog() {
        let mut c = AutoscaleController::new(2, 8, 1.0, 16.0);
        assert_eq!(c.replicas(), 2);
        // Depth 48 → relative error 2 → +2 replicas per decision.
        let d = c.observe_depth(0, 48);
        assert_eq!(d.replicas, 4);
        c.observe_depth(1, 48);
        c.observe_depth(2, 48);
        assert_eq!(c.replicas(), 8, "pinned at r_max");
        c.observe_depth(3, 480);
        assert_eq!(c.replicas(), 8, "overshoot stays clamped");
    }

    #[test]
    fn shrinks_when_the_queue_drains() {
        let mut c = AutoscaleController::new(1, 8, 2.0, 16.0);
        for w in 0..4 {
            c.observe_depth(w, 64);
        }
        assert_eq!(c.replicas(), 8);
        // Empty queue → relative error −1 → −2 replicas per decision.
        c.observe_depth(4, 0);
        assert_eq!(c.replicas(), 6);
        for w in 5..20 {
            c.observe_depth(w, 0);
        }
        assert_eq!(c.replicas(), 1, "pinned at r_min");
    }

    #[test]
    fn fractional_progress_accumulates() {
        let mut c = AutoscaleController::new(1, 8, 0.5, 10.0);
        // Depth 15 → error 0.5 → +0.25 replicas per decision: the integer
        // count must move only after 4 decisions.
        c.observe_depth(0, 15);
        c.observe_depth(1, 15);
        c.observe_depth(2, 15);
        assert_eq!(c.replicas(), 1);
        c.observe_depth(3, 15);
        assert_eq!(c.replicas(), 2);
    }

    #[test]
    fn on_target_depth_holds_steady() {
        let mut c = AutoscaleController::new(2, 8, 1.0, 16.0);
        c.observe_depth(0, 64); // grow away from the bound first
        let r = c.replicas();
        for w in 1..10 {
            c.observe_depth(w, 16);
        }
        assert_eq!(c.replicas(), r);
        assert_eq!(c.decisions(), 10);
    }

    #[test]
    #[should_panic(expected = "empty replica range")]
    fn rejects_inverted_bounds() {
        let _ = AutoscaleController::new(4, 2, 1.0, 1.0);
    }
}
