//! Seeded multi-tenant load generation: diurnal/bursty open-loop arrivals
//! with Zipf-distributed `(tenant, request)` popularity.
//!
//! Internet-scale traffic is nothing like a constant-rate Poisson stream:
//! load breathes diurnally (a daily sine between trough and peak), spikes in
//! short bursts (retry storms, batch jobs, social cascades), and its
//! popularity is heavily skewed — a few tenants send most of the traffic and
//! a few request keys dominate within each tenant (the Zipf head the
//! prediction cache exists for). This module generates exactly that shape as
//! a **non-homogeneous Poisson process** via Lewis–Shedler thinning:
//! candidate arrivals are drawn at the peak rate and accepted with
//! probability `rate(t)/rate_max`, which is exact for any bounded rate
//! function and — because every draw comes from one seeded RNG in arrival
//! order — makes the whole stream a pure function of `(seed, spec)`,
//! bit-identical at any `ASGD_THREADS`.
//!
//! Tenant and pool-row draws use the rejection-inversion Zipf sampler from
//! `asgd-stats` (rank 1 = hottest), so tenant 0 is the heaviest tenant and
//! low row indices are the hot keys.

use asgd_stats::dist::Zipf;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One multi-tenant inference request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantRequest {
    /// Dense request id, `0..n` in arrival order — the index of this
    /// request's latency record and prediction rows.
    pub id: u32,
    /// Arrival time, simulated seconds from stream start.
    pub arrival: f64,
    /// Tenant the request belongs to (`0..tenants`, 0 = hottest).
    pub tenant: u16,
    /// Row of the request pool holding this request's feature vector
    /// (low rows = hot keys).
    pub pool_row: usize,
}

/// Shape of a fleet load: rate modulation × popularity skew.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetLoadSpec {
    /// Requests to generate.
    pub n: usize,
    /// Mean offered load at the diurnal midline, requests per simulated
    /// second.
    pub base_rps: f64,
    /// Relative amplitude of the diurnal sine in `[0, 1)`: the rate swings
    /// between `base·(1−a)` (trough) and `base·(1+a)` (peak).
    pub diurnal_amplitude: f64,
    /// Period of the diurnal sine, simulated seconds (the "day").
    pub diurnal_period_s: f64,
    /// Rate multiplier inside a burst window (≥ 1; 1 disables bursts).
    pub burst_factor: f64,
    /// Mean gap between burst starts, simulated seconds (0 disables bursts).
    pub burst_every_s: f64,
    /// Length of each burst window, simulated seconds.
    pub burst_len_s: f64,
    /// Number of tenants.
    pub tenants: usize,
    /// Zipf exponent of both the tenant and the per-request popularity draw
    /// (s ≥ 1 concentrates >50% of traffic on the head).
    pub zipf_s: f64,
    /// Rows in the request pool.
    pub pool_rows: usize,
}

impl FleetLoadSpec {
    /// A steady single-burst-free spec — Poisson at `base_rps`, still
    /// Zipf-skewed. Useful as a baseline and in tests.
    pub fn steady(n: usize, base_rps: f64, tenants: usize, zipf_s: f64, pool_rows: usize) -> Self {
        Self {
            n,
            base_rps,
            diurnal_amplitude: 0.0,
            diurnal_period_s: 1.0,
            burst_factor: 1.0,
            burst_every_s: 0.0,
            burst_len_s: 0.0,
            tenants,
            zipf_s,
            pool_rows,
        }
    }

    /// The instantaneous offered rate at simulated time `t`, given the burst
    /// windows in effect (callers outside the generator can pass `&[]`).
    pub fn rate_at(&self, t: f64, bursts: &[(f64, f64)]) -> f64 {
        let diurnal = 1.0
            + self.diurnal_amplitude * (std::f64::consts::TAU * t / self.diurnal_period_s).sin();
        let burst = if bursts.iter().any(|&(s, e)| t >= s && t < e) {
            self.burst_factor
        } else {
            1.0
        };
        self.base_rps * diurnal * burst
    }

    /// The peak rate the thinning envelope uses.
    fn rate_max(&self) -> f64 {
        self.base_rps * (1.0 + self.diurnal_amplitude) * self.burst_factor.max(1.0)
    }

    fn validate(&self) {
        assert!(self.base_rps > 0.0, "arrival rate must be positive");
        assert!(
            (0.0..1.0).contains(&self.diurnal_amplitude),
            "diurnal amplitude must be in [0, 1)"
        );
        assert!(
            self.diurnal_period_s > 0.0,
            "diurnal period must be positive"
        );
        assert!(self.burst_factor >= 1.0, "burst factor must be >= 1");
        assert!(
            self.tenants >= 1 && self.tenants <= u16::MAX as usize + 1,
            "bad tenant count"
        );
        assert!(self.pool_rows > 0, "request pool must be non-empty");
    }
}

/// Generates the stream: `n` requests with non-homogeneous Poisson arrivals
/// (diurnal sine × seeded burst windows, by Lewis–Shedler thinning at the
/// peak rate) and Zipf-distributed tenant / pool-row draws. Arrivals are
/// strictly increasing; the same `(seed, spec)` always yields the same
/// stream.
///
/// # Panics
/// Panics when the spec is inconsistent (non-positive rate, amplitude
/// outside `[0, 1)`, burst factor below 1, empty pool, zero tenants) or the
/// Zipf exponent is not positive.
pub fn fleet_stream(seed: u64, spec: &FleetLoadSpec) -> Vec<TenantRequest> {
    spec.validate();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x000F_1EE7_10AD_5EED);
    let tenant_zipf = Zipf::new(spec.tenants as u64, spec.zipf_s).expect("tenant zipf");
    let row_zipf = Zipf::new(spec.pool_rows as u64, spec.zipf_s).expect("row zipf");

    // Burst windows are laid out first from their own portion of the seeded
    // stream, far enough to outlast any plausible stream horizon.
    let bursts = burst_windows(&mut rng, spec);

    let rate_max = spec.rate_max();
    let mut out = Vec::with_capacity(spec.n);
    let mut t = 0.0f64;
    while out.len() < spec.n {
        // Candidate arrival at the envelope rate…
        let u: f64 = rng.gen();
        t += -(1.0 - u).ln() / rate_max;
        // …accepted with probability rate(t)/rate_max (thinning).
        let accept: f64 = rng.gen();
        if accept * rate_max > spec.rate_at(t, &bursts) {
            continue;
        }
        let tenant = (tenant_zipf.sample(&mut rng) - 1) as u16;
        let pool_row = (row_zipf.sample(&mut rng) - 1) as usize;
        out.push(TenantRequest {
            id: out.len() as u32,
            arrival: t,
            tenant,
            pool_row,
        });
    }
    out
}

/// Draws the `(start, end)` burst windows covering a generous horizon: burst
/// starts are a Poisson process with mean gap `burst_every_s`.
fn burst_windows(rng: &mut StdRng, spec: &FleetLoadSpec) -> Vec<(f64, f64)> {
    if spec.burst_every_s <= 0.0 || spec.burst_factor <= 1.0 || spec.burst_len_s <= 0.0 {
        return Vec::new();
    }
    // Horizon: the stream can't outlast n requests at the trough rate.
    let trough = spec.base_rps * (1.0 - spec.diurnal_amplitude).max(1e-3);
    let horizon = 2.0 * spec.n as f64 / trough + spec.diurnal_period_s;
    let mut windows = Vec::new();
    let mut t = 0.0f64;
    while t < horizon {
        let u: f64 = rng.gen();
        t += -(1.0 - u).ln() * spec.burst_every_s;
        windows.push((t, t + spec.burst_len_s));
        t += spec.burst_len_s;
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FleetLoadSpec {
        FleetLoadSpec {
            n: 4000,
            base_rps: 1000.0,
            diurnal_amplitude: 0.6,
            diurnal_period_s: 2.0,
            burst_factor: 3.0,
            burst_every_s: 1.0,
            burst_len_s: 0.05,
            tenants: 8,
            zipf_s: 1.1,
            pool_rows: 500,
        }
    }

    #[test]
    fn stream_is_deterministic_and_ordered() {
        let a = fleet_stream(7, &spec());
        let b = fleet_stream(7, &spec());
        assert_eq!(a, b);
        assert_ne!(a, fleet_stream(8, &spec()));
        assert_eq!(a.len(), spec().n);
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.id as usize, i);
            assert!((r.tenant as usize) < 8);
            assert!(r.pool_row < 500);
        }
        for w in a.windows(2) {
            assert!(w[1].arrival > w[0].arrival);
        }
    }

    #[test]
    fn popularity_is_zipf_skewed() {
        let s = fleet_stream(3, &spec());
        // Tenant 0 must dominate: at s = 1.1 over 8 ranks its share is
        // ~1/H ≈ 40%; assert a conservative floor.
        let t0 = s.iter().filter(|r| r.tenant == 0).count() as f64 / s.len() as f64;
        assert!(t0 > 0.3, "tenant-0 share {t0}");
        // The top-32 rows of 500 must carry the majority of requests.
        let head = s.iter().filter(|r| r.pool_row < 32).count() as f64 / s.len() as f64;
        assert!(head > 0.5, "head share {head}");
    }

    #[test]
    fn diurnal_modulation_shows_up_in_arrival_density() {
        let mut spec = spec();
        spec.burst_factor = 1.0; // isolate the sine
        spec.n = 20_000;
        let s = fleet_stream(11, &spec);
        // Count arrivals in the first rising half-period vs the falling one.
        let period = spec.diurnal_period_s;
        let in_window = |lo: f64, hi: f64| {
            s.iter()
                .filter(|r| r.arrival >= lo && r.arrival < hi)
                .count()
        };
        let peak_half = in_window(0.0, period / 2.0);
        let trough_half = in_window(period / 2.0, period);
        assert!(
            peak_half as f64 > 1.5 * trough_half as f64,
            "peak half {peak_half} vs trough half {trough_half}"
        );
    }

    #[test]
    fn steady_spec_honors_the_mean_rate() {
        let spec = FleetLoadSpec::steady(20_000, 250.0, 4, 1.0, 64);
        let s = fleet_stream(11, &spec);
        let rate = s.len() as f64 / s.last().unwrap().arrival;
        assert!((rate / 250.0 - 1.0).abs() < 0.05, "observed rate {rate}");
    }

    #[test]
    fn rate_at_composes_sine_and_burst() {
        let spec = spec();
        let quarter = spec.diurnal_period_s / 4.0;
        assert!((spec.rate_at(quarter, &[]) - 1600.0).abs() < 1e-9);
        assert!((spec.rate_at(quarter, &[(0.0, 1.0)]) - 4800.0).abs() < 1e-9);
        assert!((spec.rate_at(3.0 * quarter, &[]) - 400.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let mut s = FleetLoadSpec::steady(1, 1.0, 1, 1.0, 1);
        s.base_rps = 0.0;
        let _ = fleet_stream(0, &s);
    }
}
