//! Seeded open-loop request streams.
//!
//! An *open-loop* load generator emits requests at times drawn from a
//! Poisson process, independent of how fast the server drains them — the
//! standard model for user-facing traffic, and the one that exposes queueing
//! collapse (a closed loop self-throttles and hides it). The whole stream is
//! materialized up front from a single seed, so a serving run is a pure
//! function of `(request seed, fault seed)`: replaying the same seeds at any
//! `ASGD_THREADS` reproduces every arrival, dispatch, and latency bit for
//! bit.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// One inference request: a row of the request pool arriving at a fixed
/// simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Dense request id, `0..n` in arrival order — the index of this
    /// request's latency record and prediction rows.
    pub id: u32,
    /// Arrival time, simulated seconds from stream start.
    pub arrival: f64,
    /// Row of the request pool holding this request's feature vector.
    pub pool_row: usize,
}

/// Generates `n` requests with exponential inter-arrival times at mean rate
/// `rate_rps` (a Poisson process), each drawing a uniform row of a
/// `pool_rows`-row request pool. Arrivals are strictly increasing; the same
/// `(seed, n, rate_rps, pool_rows)` always yields the same stream.
///
/// # Panics
/// Panics when the rate is not positive or the pool is empty.
pub fn open_loop_stream(seed: u64, n: usize, rate_rps: f64, pool_rows: usize) -> Vec<Request> {
    assert!(rate_rps > 0.0, "arrival rate must be positive");
    assert!(pool_rows > 0, "request pool must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_57EA_4D15_7A7C);
    let mut t = 0.0f64;
    (0..n)
        .map(|id| {
            let u: f64 = rng.gen();
            // Inverse-CDF exponential; 1-u avoids ln(0).
            t += -(1.0 - u).ln() / rate_rps;
            Request {
                id: id as u32,
                arrival: t,
                pool_row: rng.gen_range(0..pool_rows),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let a = open_loop_stream(7, 100, 50.0, 32);
        let b = open_loop_stream(7, 100, 50.0, 32);
        assert_eq!(a, b);
        let c = open_loop_stream(8, 100, 50.0, 32);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn arrivals_increase_and_ids_are_dense() {
        let s = open_loop_stream(3, 200, 100.0, 10);
        for (i, r) in s.iter().enumerate() {
            assert_eq!(r.id as usize, i);
            assert!(r.pool_row < 10);
            assert!(r.arrival > 0.0);
        }
        for w in s.windows(2) {
            assert!(w[1].arrival > w[0].arrival);
        }
    }

    #[test]
    fn mean_rate_is_roughly_honored() {
        let s = open_loop_stream(11, 20_000, 250.0, 4);
        let span = s.last().unwrap().arrival;
        let rate = s.len() as f64 / span;
        assert!((rate / 250.0 - 1.0).abs() < 0.05, "observed rate {rate}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = open_loop_stream(0, 1, 0.0, 1);
    }
}
