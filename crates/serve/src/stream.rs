//! Seeded open-loop request streams.
//!
//! An *open-loop* load generator emits requests at times drawn from a
//! Poisson process, independent of how fast the server drains them — the
//! standard model for user-facing traffic, and the one that exposes queueing
//! collapse (a closed loop self-throttles and hides it). The whole stream is
//! materialized up front from a single seed, so a serving run is a pure
//! function of `(request seed, fault seed)`: replaying the same seeds at any
//! `ASGD_THREADS` reproduces every arrival, dispatch, and latency bit for
//! bit.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// One inference request: a row of the request pool arriving at a fixed
/// simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Dense request id, `0..n` in arrival order — the index of this
    /// request's latency record and prediction rows.
    pub id: u32,
    /// Arrival time, simulated seconds from stream start.
    pub arrival: f64,
    /// Row of the request pool holding this request's feature vector.
    pub pool_row: usize,
}

/// Generates `n` requests with exponential inter-arrival times at mean rate
/// `rate_rps` (a Poisson process), each drawing a uniform row of a
/// `pool_rows`-row request pool. Arrivals are strictly increasing; the same
/// `(seed, n, rate_rps, pool_rows)` always yields the same stream.
///
/// # Panics
/// Panics when the rate is not positive or the pool is empty.
pub fn open_loop_stream(seed: u64, n: usize, rate_rps: f64, pool_rows: usize) -> Vec<Request> {
    assert!(rate_rps > 0.0, "arrival rate must be positive");
    assert!(pool_rows > 0, "request pool must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_57EA_4D15_7A7C);
    let mut t = 0.0f64;
    (0..n)
        .map(|id| {
            let u: f64 = rng.gen();
            // Inverse-CDF exponential; 1-u avoids ln(0).
            t += -(1.0 - u).ln() / rate_rps;
            Request {
                id: id as u32,
                arrival: t,
                pool_row: rng.gen_range(0..pool_rows),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let a = open_loop_stream(7, 100, 50.0, 32);
        let b = open_loop_stream(7, 100, 50.0, 32);
        assert_eq!(a, b);
        let c = open_loop_stream(8, 100, 50.0, 32);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn arrivals_increase_and_ids_are_dense() {
        let s = open_loop_stream(3, 200, 100.0, 10);
        for (i, r) in s.iter().enumerate() {
            assert_eq!(r.id as usize, i);
            assert!(r.pool_row < 10);
            assert!(r.arrival > 0.0);
        }
        for w in s.windows(2) {
            assert!(w[1].arrival > w[0].arrival);
        }
    }

    #[test]
    fn mean_rate_is_roughly_honored() {
        let s = open_loop_stream(11, 20_000, 250.0, 4);
        let span = s.last().unwrap().arrival;
        let rate = s.len() as f64 / span;
        assert!((rate / 250.0 - 1.0).abs() < 0.05, "observed rate {rate}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = open_loop_stream(0, 1, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn negative_rate_panics() {
        let _ = open_loop_stream(0, 1, -5.0, 1);
    }

    #[test]
    fn zero_requests_yield_an_empty_stream() {
        let s = open_loop_stream(9, 0, 100.0, 4);
        assert!(s.is_empty());
    }

    #[test]
    fn single_request_stream_is_well_formed() {
        let s = open_loop_stream(9, 1, 100.0, 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].id, 0);
        assert_eq!(s[0].pool_row, 0, "one-row pool has one valid row");
        assert!(s[0].arrival > 0.0 && s[0].arrival.is_finite());
    }

    #[test]
    fn inter_arrivals_look_exponential() {
        // A Poisson process has exponential gaps: mean ≈ 1/λ, coefficient
        // of variation ≈ 1, and the empirical CDF at the mean ≈ 1 − e⁻¹.
        let rate = 200.0;
        let s = open_loop_stream(17, 50_000, rate, 8);
        let gaps: Vec<f64> = std::iter::once(s[0].arrival)
            .chain(s.windows(2).map(|w| w[1].arrival - w[0].arrival))
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((mean * rate - 1.0).abs() < 0.03, "mean gap {mean}");
        assert!((cv - 1.0).abs() < 0.03, "coefficient of variation {cv}");
        let below_mean = gaps.iter().filter(|&&g| g < mean).count() as f64 / gaps.len() as f64;
        let expected = 1.0 - (-1.0f64).exp();
        assert!(
            (below_mean - expected).abs() < 0.02,
            "CDF at mean {below_mean} vs {expected}"
        );
    }

    #[test]
    fn pool_rows_are_roughly_uniform() {
        let s = open_loop_stream(23, 40_000, 100.0, 8);
        let mut counts = [0usize; 8];
        for r in &s {
            counts[r.pool_row] += 1;
        }
        for (row, &c) in counts.iter().enumerate() {
            let share = c as f64 / s.len() as f64;
            assert!(
                (share - 0.125).abs() < 0.01,
                "row {row} share {share} far from uniform"
            );
        }
    }
}
