//! The model registry: N checkpoint versions, content-addressed weight
//! dedup across them.
//!
//! A multi-tenant fleet holds many model versions at once — per-tenant
//! fine-tunes, canary builds, rollback targets — and most of them share
//! most of their weights: a per-tenant adapter run touches `W₁`/`b₁` and
//! leaves the wide classifier head alone, a head-only fine-tune does the
//! opposite, and several tenants often pin the very same build. The
//! registry exploits this by hashing each version's **flat per-layer
//! buffers** (`W₁`, `b₁`, `W₂`, `b₂` in the [`Mlp::to_flat`] layout) and
//! storing every distinct buffer exactly once: versions sharing a layer
//! share one allocation, in the f32 and bf16 storage tiers alike (bf16
//! layers are narrowed once — round-to-nearest-even, the rounding
//! contract's single round point — and hashed *after* narrowing, so an
//! f32 layer and its bf16 shadow are distinct content).
//!
//! Registration is also how the serving engine gets its compute models:
//! versions with identical full content share one materialized [`Mlp`]
//! (widened exactly from the stored tier), and the **content signature**
//! that keys that sharing doubles as the prediction-cache key prefix — two
//! tenants pinning the same build hit each other's cached predictions.
//!
//! Everything here is deterministic: FNV-1a content hashes, insertion-order
//! version ids, and byte-compare collision handling (a hash collision can
//! never alias two different layers).

use asgd_model::{Mlp, MlpConfig};
use asgd_tensor::{bf16, Precision};
use std::collections::HashMap;
use std::sync::Arc;

/// Handle of one registered model version (dense, insertion-ordered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VersionId(pub usize);

/// One stored layer buffer at its storage tier.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerBuf {
    /// Full-precision tier.
    F32(Vec<f32>),
    /// Half-width tier (bit pattern of `bf16::narrow`).
    Bf16(Vec<u16>),
}

impl LayerBuf {
    /// Stored bytes of this buffer.
    pub fn bytes(&self) -> usize {
        match self {
            LayerBuf::F32(v) => v.len() * 4,
            LayerBuf::Bf16(v) => v.len() * 2,
        }
    }

    /// Widens the stored values into `out` (exact for both tiers).
    fn widen_into(&self, out: &mut Vec<f32>) {
        match self {
            LayerBuf::F32(v) => out.extend_from_slice(v),
            LayerBuf::Bf16(v) => out.extend(v.iter().map(|&h| bf16::widen(h))),
        }
    }

    /// FNV-1a over the stored byte representation.
    fn content_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        match self {
            LayerBuf::F32(v) => {
                eat(4);
                for x in v {
                    for b in x.to_le_bytes() {
                        eat(b);
                    }
                }
            }
            LayerBuf::Bf16(v) => {
                eat(2);
                for x in v {
                    for b in x.to_le_bytes() {
                        eat(b);
                    }
                }
            }
        }
        h
    }
}

/// One registered version: named, tiered, four shared layer allocations,
/// and the materialized serving model (shared across identical content).
#[derive(Debug, Clone)]
pub struct ModelVersion {
    /// Human-readable version name (e.g. `"tenant3/v2"`).
    pub name: String,
    /// Storage tier the version was registered at.
    pub precision: Precision,
    /// The four stored layers, in `W₁ ‖ b₁ ‖ W₂ ‖ b₂` order. `Arc` clones of
    /// the registry's dedup store — versions sharing a layer share the
    /// allocation.
    pub layers: [Arc<LayerBuf>; 4],
    /// Full-content signature (FNV fold of the four layer hashes): equal
    /// signatures ⇒ byte-identical stored content. Keys materialized-model
    /// sharing and prefixes the prediction-cache key.
    pub sig: u64,
    /// The model served for this version, widened exactly from the stored
    /// tier. Shared (same `Arc`) by every version with the same `sig`.
    pub model: Arc<Mlp>,
}

/// Storage accounting of the registry's dedup store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DedupStats {
    /// Registered versions.
    pub versions: usize,
    /// Layer references held by versions (4 per version).
    pub layers_logical: usize,
    /// Distinct layer allocations actually stored.
    pub layers_unique: usize,
    /// Bytes the versions would occupy stored independently.
    pub bytes_logical: usize,
    /// Bytes actually allocated.
    pub bytes_stored: usize,
}

impl DedupStats {
    /// `bytes_logical / bytes_stored` (1.0 for an empty registry).
    pub fn ratio(&self) -> f64 {
        if self.bytes_stored == 0 {
            1.0
        } else {
            self.bytes_logical as f64 / self.bytes_stored as f64
        }
    }
}

/// Content-addressed store of model versions (one fixed architecture).
#[derive(Debug)]
pub struct ModelRegistry {
    config: MlpConfig,
    /// hash → candidate buffers with that hash (byte-compared on insert, so
    /// a collision can never alias two different layers).
    store: HashMap<u64, Vec<Arc<LayerBuf>>>,
    /// content signature → shared materialized model.
    materialized: HashMap<u64, Arc<Mlp>>,
    versions: Vec<ModelVersion>,
    bytes_logical: usize,
}

impl ModelRegistry {
    /// An empty registry for one architecture. Every registered version must
    /// match it — a fleet serves one request schema.
    pub fn new(config: MlpConfig) -> Self {
        Self {
            config,
            store: HashMap::new(),
            materialized: HashMap::new(),
            versions: Vec::new(),
            bytes_logical: 0,
        }
    }

    /// The architecture every version shares.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Registers `model` as a new version stored at `precision`, returning
    /// its id. Layers already present (same tier, same bytes) are shared,
    /// not copied; a version whose full content is already materialized
    /// shares the existing serving [`Mlp`].
    ///
    /// # Panics
    /// Panics on an architecture mismatch.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        model: &Mlp,
        precision: Precision,
    ) -> VersionId {
        assert_eq!(
            model.config(),
            &self.config,
            "version architecture mismatch"
        );
        let flat = model.to_flat();
        let mut layers: Vec<Arc<LayerBuf>> = Vec::with_capacity(4);
        let mut sig = 0xcbf2_9ce4_8422_2325u64;
        for part in layer_slices(&self.config, &flat) {
            let buf = match precision {
                Precision::F32 => LayerBuf::F32(part.to_vec()),
                Precision::Bf16 => LayerBuf::Bf16(part.iter().map(|&v| bf16::narrow(v)).collect()),
            };
            self.bytes_logical += buf.bytes();
            let hash = buf.content_hash();
            let bucket = self.store.entry(hash).or_default();
            let shared = match bucket.iter().find(|c| ***c == buf) {
                Some(existing) => existing.clone(),
                None => {
                    let fresh = Arc::new(buf);
                    bucket.push(fresh.clone());
                    fresh
                }
            };
            sig ^= hash;
            sig = sig.wrapping_mul(0x0000_0100_0000_01b3);
            layers.push(shared);
        }
        let layers: [Arc<LayerBuf>; 4] = layers.try_into().expect("exactly four layers");
        let model = match self.materialized.get(&sig) {
            Some(m) => m.clone(),
            None => {
                let mut widened = Vec::with_capacity(self.config.param_len());
                for l in &layers {
                    l.widen_into(&mut widened);
                }
                let mut m = Mlp::zeros(&self.config);
                m.load_flat(&widened);
                let m = Arc::new(m);
                self.materialized.insert(sig, m.clone());
                m
            }
        };
        let id = VersionId(self.versions.len());
        self.versions.push(ModelVersion {
            name: name.into(),
            precision,
            layers,
            sig,
            model,
        });
        id
    }

    /// A registered version.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn version(&self, id: VersionId) -> &ModelVersion {
        &self.versions[id.0]
    }

    /// The serving model of a version (shared across identical content).
    pub fn model(&self, id: VersionId) -> &Arc<Mlp> {
        &self.versions[id.0].model
    }

    /// Registered version count.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether no version is registered yet.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Distinct materialized serving models.
    pub fn distinct_models(&self) -> usize {
        self.materialized.len()
    }

    /// Current dedup accounting.
    pub fn dedup_stats(&self) -> DedupStats {
        let layers_unique: usize = self.store.values().map(Vec::len).sum();
        let bytes_stored: usize = self
            .store
            .values()
            .flat_map(|b| b.iter())
            .map(|l| l.bytes())
            .sum();
        DedupStats {
            versions: self.versions.len(),
            layers_logical: 4 * self.versions.len(),
            layers_unique,
            bytes_logical: self.bytes_logical,
            bytes_stored,
        }
    }
}

/// The four flat layer slices of [`Mlp::to_flat`]'s layout.
fn layer_slices<'a>(config: &MlpConfig, flat: &'a [f32]) -> [&'a [f32]; 4] {
    let w1 = config.num_features * config.hidden;
    let b1 = config.hidden;
    let w2 = config.hidden * config.num_classes;
    let b2 = config.num_classes;
    assert_eq!(flat.len(), w1 + b1 + w2 + b2, "flat layout mismatch");
    let (w1s, rest) = flat.split_at(w1);
    let (b1s, rest) = rest.split_at(b1);
    let (w2s, b2s) = rest.split_at(w2);
    [w1s, b1s, w2s, b2s]
}

/// Derives a per-tenant *adapter* fine-tune of `base`: `W₁` and `b₁` are
/// perturbed by seeded noise of relative scale `eps`, the classifier head
/// (`W₂`, `b₂`) is left bit-identical — the version family in which
/// per-layer dedup pays most on wide-head models, since the shared head is
/// the dominant allocation. The same `(base, seed, eps)` always yields the
/// same variant.
pub fn adapter_variant(base: &Mlp, seed: u64, eps: f32) -> Mlp {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let config = *base.config();
    let mut flat = base.to_flat();
    let body = config.num_features * config.hidden + config.hidden;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xADA9_7E2F_1355_C0DE);
    for v in &mut flat[..body] {
        *v += eps * (rng.gen::<f32>() - 0.5);
    }
    let mut m = Mlp::zeros(&config);
    m.load_flat(&flat);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MlpConfig {
        MlpConfig {
            num_features: 10,
            hidden: 4,
            num_classes: 50,
        }
    }

    #[test]
    fn identical_versions_share_everything() {
        let base = Mlp::init(&config(), 7);
        let mut reg = ModelRegistry::new(config());
        let a = reg.register("v0", &base, Precision::F32);
        let b = reg.register("v0-pinned", &base, Precision::F32);
        assert_eq!(reg.version(a).sig, reg.version(b).sig);
        assert!(Arc::ptr_eq(reg.model(a), reg.model(b)));
        for (x, y) in reg.version(a).layers.iter().zip(&reg.version(b).layers) {
            assert!(Arc::ptr_eq(x, y), "layers should share one allocation");
        }
        let stats = reg.dedup_stats();
        assert_eq!(stats.versions, 2);
        assert_eq!(stats.layers_logical, 8);
        assert_eq!(stats.layers_unique, 4);
        assert_eq!(stats.bytes_logical, 2 * stats.bytes_stored);
        assert!((stats.ratio() - 2.0).abs() < 1e-12);
        assert_eq!(reg.distinct_models(), 1);
    }

    #[test]
    fn adapter_variants_share_the_head_only() {
        let base = Mlp::init(&config(), 7);
        let mut reg = ModelRegistry::new(config());
        let a = reg.register("base", &base, Precision::F32);
        let b = reg.register("t1", &adapter_variant(&base, 1, 1e-3), Precision::F32);
        assert_ne!(reg.version(a).sig, reg.version(b).sig);
        let (va, vb) = (reg.version(a).layers.clone(), reg.version(b).layers.clone());
        assert!(!Arc::ptr_eq(&va[0], &vb[0]), "W1 differs");
        assert!(!Arc::ptr_eq(&va[1], &vb[1]), "b1 differs");
        assert!(Arc::ptr_eq(&va[2], &vb[2]), "W2 shared");
        assert!(Arc::ptr_eq(&va[3], &vb[3]), "b2 shared");
        assert_eq!(reg.dedup_stats().layers_unique, 6);
        assert_eq!(reg.distinct_models(), 2);
    }

    #[test]
    fn materialized_model_matches_the_registered_weights() {
        let base = Mlp::init(&config(), 3);
        let mut reg = ModelRegistry::new(config());
        let id = reg.register("v", &base, Precision::F32);
        assert_eq!(**reg.model(id), base);
    }

    #[test]
    fn bf16_tier_halves_storage_and_serves_the_quantized_model() {
        let base = Mlp::init(&config(), 3);
        let mut reg32 = ModelRegistry::new(config());
        let mut reg16 = ModelRegistry::new(config());
        let a = reg32.register("v", &base, Precision::F32);
        let b = reg16.register("v", &base, Precision::Bf16);
        assert_eq!(
            reg16.dedup_stats().bytes_stored * 2,
            reg32.dedup_stats().bytes_stored
        );
        // The served model is the once-narrowed checkpoint, widened exactly.
        assert_eq!(**reg16.model(b), base.quantized(Precision::Bf16));
        assert_eq!(**reg32.model(a), base);
        // Same weights at different tiers are *different* content.
        let mut mixed = ModelRegistry::new(config());
        let x = mixed.register("f32", &base, Precision::F32);
        let y = mixed.register("bf16", &base, Precision::Bf16);
        assert_ne!(mixed.version(x).sig, mixed.version(y).sig);
    }

    #[test]
    fn bf16_versions_dedup_after_narrowing() {
        // Two f32 models whose weights round to the same bf16 bits collapse
        // to one stored version: hashing happens *after* the narrow. The
        // pre-rounded twin (quantize → widen) is exactly such a model.
        let base = Mlp::init(&config(), 5);
        let rounded = base.quantized(Precision::Bf16);
        assert_ne!(base, rounded, "quantization should change some weight");
        let mut reg = ModelRegistry::new(config());
        let a = reg.register("a", &base, Precision::Bf16);
        let b = reg.register("b", &rounded, Precision::Bf16);
        assert_eq!(reg.version(a).sig, reg.version(b).sig);
        assert!(Arc::ptr_eq(reg.model(a), reg.model(b)));
        assert_eq!(reg.dedup_stats().layers_unique, 4);
        assert_eq!(reg.distinct_models(), 1);
    }

    #[test]
    #[should_panic(expected = "architecture mismatch")]
    fn wrong_architecture_is_rejected() {
        let mut reg = ModelRegistry::new(config());
        let other = MlpConfig {
            num_features: 3,
            hidden: 2,
            num_classes: 4,
        };
        reg.register("bad", &Mlp::init(&other, 1), Precision::F32);
    }

    #[test]
    fn adapter_variant_is_deterministic() {
        let base = Mlp::init(&config(), 11);
        assert_eq!(
            adapter_variant(&base, 4, 1e-3),
            adapter_variant(&base, 4, 1e-3)
        );
        assert_ne!(
            adapter_variant(&base, 4, 1e-3),
            adapter_variant(&base, 5, 1e-3)
        );
    }
}
