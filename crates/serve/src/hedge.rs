//! Hedged requests: tail-latency insurance in virtual time.
//!
//! "The Tail at Scale" observation: when a request has already waited
//! longer than almost all of its peers, re-issuing it to a second replica
//! converts a near-certain tail latency into a race that the fresh replica
//! usually wins. This module holds the *policy* — a streaming quantile of
//! observed queueing delays and the decision rule — while the fleet engine
//! owns the *mechanics* (picking the hedge replica, racing completions,
//! rolling the loser's device clock back).
//!
//! The threshold is a P² streaming quantile of queueing delays, observed in
//! scheduler (dispatch) order by the single-threaded loop — deterministic
//! at any thread count. Hedging stays disarmed until `min_obs` delays have
//! been recorded so the quantile estimate has support, and the threshold is
//! floored (`min_wait_s`) so a lightly loaded fleet does not hedge on
//! micro-seconds of noise.

use asgd_stats::P2Quantile;

/// Decides when a queued request deserves a hedge.
#[derive(Debug)]
pub struct HedgePolicy {
    quantile: P2Quantile,
    q: f64,
    min_obs: u64,
    min_wait_s: f64,
}

/// Fleet-level hedging counters, reported in [`crate::FleetOutcome`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HedgeStats {
    /// Hedges dispatched.
    pub issued: u64,
    /// Hedges that beat the primary batch.
    pub wins: u64,
    /// Hedges the primary beat (cancelled on the spare replica).
    pub losses: u64,
    /// Virtual device-seconds reclaimed by cancelling losing hedges.
    pub cancelled_s: f64,
}

impl HedgePolicy {
    /// A policy hedging above the `q`-quantile of observed queueing delays
    /// (e.g. 0.95), once `min_obs` delays have been seen, and never below
    /// `min_wait_s` of actual waiting.
    ///
    /// # Panics
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64, min_obs: u64, min_wait_s: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "hedge quantile must be in (0, 1)");
        Self {
            quantile: P2Quantile::new(q),
            q,
            min_obs,
            min_wait_s,
        }
    }

    /// Disabled policy: never hedges, still tracks delays.
    pub fn disabled() -> Self {
        let mut p = Self::new(0.5, u64::MAX, 0.0);
        p.q = f64::NAN; // marker, reported as "off" by probes
        p
    }

    /// The quantile this policy hedges above (NaN when disabled).
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Records one observed queueing delay (dispatch time − arrival).
    pub fn observe(&mut self, delay_s: f64) {
        self.quantile.record(delay_s);
    }

    /// Current hedge threshold in seconds, or `None` while disarmed
    /// (not enough observations, or disabled).
    pub fn threshold(&self) -> Option<f64> {
        if (self.quantile.count() as u64) < self.min_obs {
            return None;
        }
        self.quantile.value().map(|t| t.max(self.min_wait_s))
    }

    /// True when a request that has already waited `delay_s` should be
    /// hedged to a second replica.
    pub fn should_hedge(&self, delay_s: f64) -> bool {
        match self.threshold() {
            Some(t) => delay_s > t,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_until_min_obs() {
        let mut p = HedgePolicy::new(0.9, 10, 0.0);
        for _ in 0..9 {
            p.observe(1.0);
        }
        assert_eq!(p.threshold(), None);
        assert!(!p.should_hedge(100.0));
        p.observe(1.0);
        assert!(p.threshold().is_some());
    }

    #[test]
    fn hedges_above_the_tracked_quantile() {
        let mut p = HedgePolicy::new(0.9, 20, 0.0);
        // 100 delays uniform-ish on [0, 1]: the 0.9-quantile sits near 0.9.
        for i in 0..100 {
            p.observe(i as f64 / 100.0);
        }
        let t = p.threshold().unwrap();
        assert!((t - 0.9).abs() < 0.1, "threshold {t}");
        assert!(p.should_hedge(t + 0.01));
        assert!(!p.should_hedge(t - 0.05));
    }

    #[test]
    fn floor_prevents_noise_hedging() {
        let mut p = HedgePolicy::new(0.5, 4, 0.5);
        for _ in 0..8 {
            p.observe(1e-6);
        }
        // Quantile is ~1e-6 but the floor holds the threshold at 0.5 s.
        assert_eq!(p.threshold(), Some(0.5));
        assert!(!p.should_hedge(0.4));
        assert!(p.should_hedge(0.6));
    }

    #[test]
    fn disabled_policy_never_hedges() {
        let mut p = HedgePolicy::disabled();
        for _ in 0..1000 {
            p.observe(5.0);
        }
        assert_eq!(p.threshold(), None);
        assert!(!p.should_hedge(f64::MAX));
        assert!(p.q().is_nan());
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_bad_quantile() {
        let _ = HedgePolicy::new(1.0, 1, 0.0);
    }
}
