//! `asgd-serve` — heterogeneity-aware online inference with adaptive
//! micro-batching.
//!
//! The paper's training-side mechanisms map one-to-one onto a serving tier:
//!
//! | training (paper)                      | serving (this crate)              |
//! |---------------------------------------|-----------------------------------|
//! | one-batch-at-a-time dynamic dispatch  | next micro-batch to the replica whose clock frees first |
//! | Algorithm 1 batch-size scaling        | [`SloController`]: `b ← clamp(b − β·(p99−target)/target, b_min, b_max)` |
//! | chaos-harness fault injection         | same [`asgd_gpusim::FaultPlan`], reinterpreted at `(window, dispatch)` points |
//! | replica loss → survivor re-dispatch   | queued requests drain through survivors; zero loss |
//!
//! A run loads a trained [`asgd_model::Mlp`] (typically via
//! [`asgd_core::load_model`] from a training checkpoint), boots one replica
//! per simulated device, and drains a seeded open-loop request stream
//! ([`open_loop_stream`]) through a central admission queue. Every
//! scheduling decision consumes only virtual clocks and seeded state, so
//! the full outcome — dispatch order, latencies, trajectories, predictions
//! — is a pure function of `(request seed, fault seed)` at any
//! `ASGD_THREADS`; the real forward math runs on worker threads off the
//! decision path and lands in id-indexed buffers.
//!
//! Entry point: [`serve`]. See DESIGN.md, "Serving subsystem".

pub mod engine;
pub mod slo;
pub mod stream;

pub use engine::{serve, LatencyStats, ReplicaReport, RequestRecord, ServeConfig, ServeOutcome};
pub use slo::SloController;
pub use stream::{open_loop_stream, Request};
