//! `asgd-serve` — heterogeneity-aware online inference with adaptive
//! micro-batching.
//!
//! The paper's training-side mechanisms map one-to-one onto a serving tier:
//!
//! | training (paper)                      | serving (this crate)              |
//! |---------------------------------------|-----------------------------------|
//! | one-batch-at-a-time dynamic dispatch  | next micro-batch to the replica whose clock frees first |
//! | Algorithm 1 batch-size scaling        | [`SloController`]: `b ← clamp(b − β·(p99−target)/target, b_min, b_max)` |
//! | chaos-harness fault injection         | same [`asgd_gpusim::FaultPlan`], reinterpreted at `(window, dispatch)` points |
//! | replica loss → survivor re-dispatch   | queued requests drain through survivors; zero loss |
//!
//! A run loads a trained [`asgd_model::Mlp`] (typically via
//! [`asgd_core::load_model`] from a training checkpoint), boots one replica
//! per simulated device, and drains a seeded open-loop request stream
//! ([`open_loop_stream`]) through a central admission queue. Every
//! scheduling decision consumes only virtual clocks and seeded state, so
//! the full outcome — dispatch order, latencies, trajectories, predictions
//! — is a pure function of `(request seed, fault seed)` at any
//! `ASGD_THREADS`; the real forward math runs on worker threads off the
//! decision path and lands in id-indexed buffers.
//!
//! Entry point: [`serve`]. See DESIGN.md, "Serving subsystem".
//!
//! ## The multi-tenant fleet
//!
//! Layered on the single-model engine, [`serve_fleet`] scales the same
//! virtual-time discipline to internet shape: a [`ModelRegistry`] holds N
//! checkpoint versions with content-addressed per-layer weight dedup
//! (versions sharing a layer share one allocation, f32 and bf16 tiers
//! alike), [`fleet_stream`] generates diurnal/bursty Zipf-skewed
//! multi-tenant load, a [`PredictionCache`] replays the Zipf head without
//! touching a device, [`HedgePolicy`]-driven hedged requests race a second
//! replica and cancel the loser in virtual time
//! ([`asgd_gpusim::Device::rollback_to`]), and an [`AutoscaleController`]
//! commissions/decommissions replica slots on admission-queue depth —
//! Algorithm 1 pointed at provisioning, placed round-robin across a
//! [`asgd_gpusim::ClusterTopology`]'s servers. The full outcome stays a
//! pure function of `(load seed, fault seed, config)` at any
//! `ASGD_THREADS`.

pub mod autoscale;
pub mod cache;
pub mod engine;
pub mod fleet;
pub mod hedge;
pub mod loadgen;
pub mod registry;
pub mod slo;
pub mod stream;

pub use autoscale::{AutoscaleController, AutoscaleDecision, Provisioning};
pub use cache::{CacheStats, PredictionCache};
pub use engine::{serve, LatencyStats, ReplicaReport, RequestRecord, ServeConfig, ServeOutcome};
pub use fleet::{serve_fleet, FleetConfig, FleetOutcome, FleetRecord, FleetReplicaReport};
pub use hedge::{HedgePolicy, HedgeStats};
pub use loadgen::{fleet_stream, FleetLoadSpec, TenantRequest};
pub use registry::{adapter_variant, DedupStats, ModelRegistry, ModelVersion, VersionId};
pub use slo::SloController;
pub use stream::{open_loop_stream, Request};
